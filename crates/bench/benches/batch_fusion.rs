//! Batch-dimension kernel fusion: fused `Session::infer_batch` vs the
//! per-request loop.
//!
//! The fused path concatenates a micro-batch's feature matrices into one
//! `m × (d·B)` operand and runs every kernel once per layer, so the
//! adjacency traversal of each Aggregate feeds `d·B` output columns per
//! stored edge instead of `d`, and each Update streams the shared weight
//! through one column-blocked kernel instead of `B` skinny ones.  This
//! bench measures steady-state requests/s of both paths on the Cora
//! quarter-scale GCN across batch sizes, printing one JSON line per
//! configuration (same machine-greppable style as the sibling benches) and
//! recording the log to `BENCH_batch_fusion.json` at the workspace root.
//!
//! Requests are served in Cora's native representation: the input features
//! are ~1 % dense, so a serving client submits them as CSR.  Asserts the
//! fused path is ≥ 1.3x requests/s at batch 8.  Run with
//! `BATCH_BENCH_REQUESTS=<n>` to change the sample count (CI smoke uses a
//! small value).

use criterion::{criterion_group, criterion_main, Criterion};
use dynasparse::{EngineOptions, HostExecutionOptions, MappingStrategy, Planner, Session};
use dynasparse_graph::{Dataset, FeatureMatrix};
use dynasparse_matrix::CsrMatrix;
use dynasparse_model::{GnnModel, GnnModelKind};
use std::fmt::Write as _;
use std::time::Instant;

/// Micro-batches measured per configuration (each batch serves `B`
/// requests).
fn batches_per_config() -> usize {
    std::env::var("BATCH_BENCH_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24)
        .max(3)
}

struct Measured {
    fused_rps: f64,
    loop_rps: f64,
}

/// Steady-state requests/s of the fused and per-request `infer_batch` paths
/// at one batch size, interleaving rounds and keeping each path's best
/// round (the estimate least distorted by scheduler noise on shared hosts).
fn measure(batch_size: usize, strategies: &[MappingStrategy]) -> Measured {
    const ROUNDS: usize = 4;
    let dataset = Dataset::Cora.spec().generate_scaled(3, 0.25);
    let model = GnnModel::standard(
        GnnModelKind::Gcn,
        dataset.features.dim(),
        16,
        dataset.spec.num_classes,
        1,
    );
    // Cora features are ~1% dense: a serving client ships them sparse.
    let request = FeatureMatrix::Sparse(CsrMatrix::from_dense(&dataset.features.to_dense()));
    let batch: Vec<FeatureMatrix> = (0..batch_size).map(|_| request.clone()).collect();
    let batches = batches_per_config();

    let mut sessions: Vec<(usize, Session<'_>)> = Vec::new();
    let plans: Vec<(usize, _)> = [false, true]
        .iter()
        .enumerate()
        .map(|(path, &fused)| {
            let options = EngineOptions::builder()
                .host(HostExecutionOptions {
                    batch_fusion: fused,
                    ..Default::default()
                })
                .build();
            (path, Planner::new(options).plan(&model, &dataset).unwrap())
        })
        .collect();
    for (path, plan) in &plans {
        let mut session = plan.session(strategies);
        session.reserve_batch(batch_size);
        // Warm-up: size the (batch) arena and caches, then measure steady
        // state.
        for _ in 0..2 {
            session.infer_batch(&batch).unwrap();
        }
        sessions.push((*path, session));
    }
    let mut best = [f64::INFINITY; 2];
    for _ in 0..ROUNDS {
        for (path, session) in sessions.iter_mut() {
            let start = Instant::now();
            for _ in 0..batches {
                session.infer_batch(&batch).unwrap();
            }
            let s = start.elapsed().as_secs_f64();
            best[*path] = best[*path].min(s / (batches * batch_size) as f64);
        }
    }
    Measured {
        fused_rps: 1.0 / best[1],
        loop_rps: 1.0 / best[0],
    }
}

/// The two serving configurations measured: embeddings-only serving (the
/// inference product itself — no accelerator pricing, so host kernel time
/// dominates and kernel-level fusion shows directly) and Dynamic-priced
/// serving (every request additionally runs the cycle-level Analyzer /
/// Scheduler pricing, an inherently per-request simulator cost that batching
/// cannot amortise and that dilutes the end-to-end ratio).
fn configs() -> [(&'static str, Vec<MappingStrategy>); 2] {
    [
        ("embeddings", Vec::new()),
        ("dynamic_priced", vec![MappingStrategy::Dynamic]),
    ]
}

fn batch_sweep() {
    let mut log = String::new();
    let mut speedup_at_8 = 0.0;
    for (config, strategies) in configs() {
        for batch_size in [1usize, 2, 4, 8] {
            let m = measure(batch_size, &strategies);
            let speedup = m.fused_rps / m.loop_rps;
            if batch_size == 8 && config == "embeddings" {
                speedup_at_8 = speedup;
            }
            let line = format!(
                "{{\"bench\":\"batch_fusion\",\"workload\":\"cora_quarter_gcn_sparse\",\
                 \"config\":\"{config}\",\"batch\":{batch_size},\"loop_rps\":{:.1},\
                 \"fused_rps\":{:.1},\"speedup\":{speedup:.2}}}",
                m.loop_rps, m.fused_rps
            );
            println!("{line}");
            let _ = writeln!(log, "{line}");
        }
    }
    // Record at the workspace root, beside the other BENCH_*.json logs
    // (cargo bench runs with the package directory as cwd).
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batch_fusion.json");
    if let Err(e) = std::fs::write(path, &log) {
        eprintln!("could not record {path}: {e}");
    }
    println!("\n  fused infer_batch at batch 8 (embeddings serving): {speedup_at_8:.2}x the per-request loop");
    assert!(
        speedup_at_8 >= 1.3,
        "fused infer_batch must serve >= 1.3x requests/s at batch 8, got {speedup_at_8:.2}x"
    );
}

fn bench_batch_fusion(c: &mut Criterion) {
    // Criterion-visible numbers for the two paths at the asserted batch
    // size.
    let mut group = c.benchmark_group("batch_fusion");
    group.sample_size(2);
    group.bench_function("batch8_loop", |b| b.iter(|| measure(8, &[]).loop_rps));
    group.bench_function("batch8_fused", |b| b.iter(|| measure(8, &[]).fused_rps));
    group.finish();

    batch_sweep();
}

criterion_group!(benches, bench_batch_fusion);
criterion_main!(benches);
