//! Figs. 11 and 12 — speedup of the Dynamic mapping over S1 (Fig. 11) and
//! over S2 (Fig. 12) as the GNN weight matrices are pruned to increasing
//! sparsity.
//!
//! `DYNASPARSE_QUICK=1` reduces the sweep (GCN + GIN, four sparsity points)
//! for fast smoke runs.

use dynasparse_bench::{
    all_datasets, all_models, fmt_speedup, print_table, quick_mode, run_eval, write_json,
};
use dynasparse_model::GnnModelKind;
use dynasparse_runtime::MappingStrategy;
use serde::Serialize;

#[derive(Serialize)]
struct SweepPoint {
    model: String,
    dataset: String,
    weight_sparsity: f64,
    so_s1: f64,
    so_s2: f64,
    dynamic_ms: f64,
}

fn main() {
    let (models, sparsities): (Vec<GnnModelKind>, Vec<f64>) = if quick_mode() {
        (
            vec![GnnModelKind::Gcn, GnnModelKind::Gin],
            vec![0.0, 0.5, 0.9, 0.99],
        )
    } else {
        (
            all_models().to_vec(),
            vec![0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.99],
        )
    };

    let mut report = Vec::new();
    for &model in &models {
        let mut rows_s1 = Vec::new();
        let mut rows_s2 = Vec::new();
        for dataset in all_datasets() {
            let mut cells_s1 = vec![dataset.abbrev().to_string()];
            let mut cells_s2 = vec![dataset.abbrev().to_string()];
            for &sparsity in &sparsities {
                let rec = run_eval(model, dataset, sparsity);
                let so_s1 = rec.speedup_over(MappingStrategy::Static1);
                let so_s2 = rec.speedup_over(MappingStrategy::Static2);
                cells_s1.push(fmt_speedup(so_s1));
                cells_s2.push(fmt_speedup(so_s2));
                report.push(SweepPoint {
                    model: model.name().to_string(),
                    dataset: dataset.name().to_string(),
                    weight_sparsity: sparsity,
                    so_s1,
                    so_s2,
                    dynamic_ms: rec.latency_ms(MappingStrategy::Dynamic),
                });
            }
            rows_s1.push(cells_s1);
            rows_s2.push(cells_s2);
        }
        let headers: Vec<String> = std::iter::once("DS".to_string())
            .chain(sparsities.iter().map(|s| format!("{:.0}%", s * 100.0)))
            .collect();
        let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        print_table(
            &format!(
                "Fig. 11 ({}): speedup of Dynamic over S1 vs weight sparsity",
                model.name()
            ),
            &header_refs,
            &rows_s1,
        );
        print_table(
            &format!(
                "Fig. 12 ({}): speedup of Dynamic over S2 vs weight sparsity",
                model.name()
            ),
            &header_refs,
            &rows_s2,
        );
    }
    write_json("fig11_12_pruned_speedup", &report);
}
