//! Table VI — dataset statistics.
//!
//! Prints the published statistics alongside the statistics of the generated
//! synthetic instances (at harness scale), so the fidelity of the dataset
//! substitution is visible.

use dynasparse_bench::{all_datasets, default_scale, load_dataset, print_table};

fn main() {
    let mut rows = Vec::new();
    for dataset in all_datasets() {
        let spec = dataset.spec();
        let ds = load_dataset(dataset);
        rows.push(vec![
            dataset.abbrev().to_string(),
            spec.num_vertices.to_string(),
            spec.num_edges.to_string(),
            spec.feature_dim.to_string(),
            spec.num_classes.to_string(),
            format!("{:.4}%", spec.adjacency_density * 100.0),
            format!("{:.2}%", spec.feature_density * 100.0),
            format!("{:.2}", default_scale(dataset)),
            ds.num_vertices().to_string(),
            ds.num_edges().to_string(),
            format!("{:.4}%", ds.adjacency_density() * 100.0),
            format!("{:.2}%", ds.feature_density() * 100.0),
        ]);
    }
    print_table(
        "Table VI: dataset statistics (published | generated instance)",
        &[
            "DS",
            "|V|",
            "|E|",
            "feat",
            "cls",
            "dens(A)",
            "dens(H0)",
            "scale",
            "gen |V|",
            "gen |E|",
            "gen dens(A)",
            "gen dens(H0)",
        ],
        &rows,
    );
}
