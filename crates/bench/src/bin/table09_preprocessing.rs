//! Table IX — preprocessing (compilation) time of the compiler per model and
//! dataset: IR generation, data partitioning / execution-scheme generation
//! and compile-time sparsity profiling.

use dynasparse_bench::{
    all_datasets, all_models, build_model, load_dataset, print_table, write_json,
};
use dynasparse_compiler::{compile, CompilerConfig};
use serde::Serialize;

#[derive(Serialize)]
struct PreprocessRow {
    model: String,
    dataset: String,
    total_ms: f64,
    ir_ms: f64,
    partition_ms: f64,
    profiling_ms: f64,
}

fn main() {
    let mut report = Vec::new();
    for model_kind in all_models() {
        let mut rows = Vec::new();
        for dataset in all_datasets() {
            let ds = load_dataset(dataset);
            let model = build_model(model_kind, &ds);
            let rep = compile(&model, &ds, &CompilerConfig::default());
            let row = PreprocessRow {
                model: model_kind.name().to_string(),
                dataset: dataset.name().to_string(),
                total_ms: rep.total_ms(),
                ir_ms: rep.ir_time.as_secs_f64() * 1e3,
                partition_ms: rep.partition_time.as_secs_f64() * 1e3,
                profiling_ms: rep.profiling_time.as_secs_f64() * 1e3,
            };
            rows.push(vec![
                dataset.abbrev().to_string(),
                format!("{:.3}", row.total_ms),
                format!("{:.3}", row.ir_ms),
                format!("{:.3}", row.partition_ms),
                format!("{:.3}", row.profiling_ms),
            ]);
            report.push(row);
        }
        print_table(
            &format!(
                "Table IX ({}): compiler preprocessing time (ms)",
                model_kind.name()
            ),
            &[
                "DS",
                "total",
                "IR",
                "partition+schemes",
                "sparsity profiling",
            ],
            &rows,
        );
    }
    write_json("table09_preprocessing", &report);
}
