//! Table X — comparison of accelerator execution latency with the prior GNN
//! accelerators HyGCN and BoostGCN, using the GCN model (the only model both
//! baselines report).

use dynasparse_baselines::{FrameworkBaseline, FrameworkKind, WorkloadSummary};
use dynasparse_bench::{
    all_datasets, fmt_ms, fmt_speedup, geomean, print_table, run_eval, write_json,
};
use dynasparse_compiler::ComputationGraph;
use dynasparse_model::{GnnModel, GnnModelKind};
use dynasparse_runtime::MappingStrategy;
use serde::Serialize;

#[derive(Serialize)]
struct Table10Row {
    dataset: String,
    boostgcn_ms: f64,
    hygcn_ms: f64,
    dynasparse_ms: f64,
    speedup_vs_boostgcn: f64,
    speedup_vs_hygcn: f64,
}

fn main() {
    let mut rows = Vec::new();
    let mut report = Vec::new();
    let mut vs_boost = Vec::new();
    let mut vs_hygcn = Vec::new();
    for dataset in all_datasets() {
        let spec = dataset.spec();
        let model = GnnModel::standard(
            GnnModelKind::Gcn,
            spec.feature_dim,
            spec.hidden_dim,
            spec.num_classes,
            7,
        );
        let graph = ComputationGraph::from_model(&model, spec.num_vertices, spec.num_edges);
        let workload = WorkloadSummary::from_graph(
            &graph,
            spec.num_edges + spec.num_vertices,
            spec.feature_dim,
            spec.feature_density,
        );
        let boostgcn =
            FrameworkBaseline::new(FrameworkKind::BoostGcn, workload.clone()).execution_ms();
        let hygcn = FrameworkBaseline::new(FrameworkKind::HyGcn, workload).execution_ms();
        let rec = run_eval(GnnModelKind::Gcn, dataset, 0.0);
        let dynasparse = rec.latency_ms(MappingStrategy::Dynamic);
        let s_boost = boostgcn / dynasparse;
        let s_hygcn = hygcn / dynasparse;
        vs_boost.push(s_boost);
        vs_hygcn.push(s_hygcn);
        rows.push(vec![
            dataset.abbrev().to_string(),
            fmt_ms(boostgcn),
            fmt_ms(hygcn),
            fmt_ms(dynasparse),
            fmt_speedup(s_boost),
            fmt_speedup(s_hygcn),
        ]);
        report.push(Table10Row {
            dataset: dataset.name().to_string(),
            boostgcn_ms: boostgcn,
            hygcn_ms: hygcn,
            dynasparse_ms: dynasparse,
            speedup_vs_boostgcn: s_boost,
            speedup_vs_hygcn: s_hygcn,
        });
    }
    print_table(
        "Table X: GCN latency (ms) vs prior FPGA/ASIC accelerators",
        &[
            "DS",
            "BoostGCN",
            "HyGCN",
            "Dynasparse",
            "vs BoostGCN",
            "vs HyGCN",
        ],
        &rows,
    );
    println!(
        "\nGeometric-mean speedup: {:.2}x over BoostGCN, {:.1}x over HyGCN",
        geomean(&vs_boost),
        geomean(&vs_hygcn)
    );
    write_json("table10_fpga_baselines", &report);
}
