//! Table VII — accelerator execution latency of the three mapping strategies
//! (S1, S2, Dynamic) on the unpruned GNN models, plus the speedup of Dynamic
//! over each static strategy (SO-S1 / SO-S2) and the geometric means.

use dynasparse_bench::{
    all_datasets, all_models, fmt_ms, fmt_speedup, geomean, print_table, run_eval, write_json,
};
use dynasparse_runtime::MappingStrategy;
use serde::Serialize;

#[derive(Serialize)]
struct Table7Row {
    model: String,
    dataset: String,
    s1_ms: f64,
    s2_ms: f64,
    dynamic_ms: f64,
    so_s1: f64,
    so_s2: f64,
}

fn main() {
    let mut report = Vec::new();
    let mut so_s1_all = Vec::new();
    let mut so_s2_all = Vec::new();
    for model in all_models() {
        let mut rows = Vec::new();
        for dataset in all_datasets() {
            let rec = run_eval(model, dataset, 0.0);
            let s1 = rec.latency_ms(MappingStrategy::Static1);
            let s2 = rec.latency_ms(MappingStrategy::Static2);
            let dynamic = rec.latency_ms(MappingStrategy::Dynamic);
            let so_s1 = rec.speedup_over(MappingStrategy::Static1);
            let so_s2 = rec.speedup_over(MappingStrategy::Static2);
            so_s1_all.push(so_s1);
            so_s2_all.push(so_s2);
            rows.push(vec![
                dataset.abbrev().to_string(),
                fmt_ms(s1),
                fmt_ms(s2),
                fmt_ms(dynamic),
                fmt_speedup(so_s1),
                fmt_speedup(so_s2),
            ]);
            report.push(Table7Row {
                model: model.name().to_string(),
                dataset: dataset.name().to_string(),
                s1_ms: s1,
                s2_ms: s2,
                dynamic_ms: dynamic,
                so_s1,
                so_s2,
            });
        }
        print_table(
            &format!(
                "Table VII ({}): latency (ms) on unpruned models",
                model.name()
            ),
            &["DS", "S1", "S2", "Dynamic", "SO-S1", "SO-S2"],
            &rows,
        );
    }
    println!(
        "\nGeometric mean speedup: SO-S1 = {:.2}x, SO-S2 = {:.2}x, overall vs static = {:.2}x",
        geomean(&so_s1_all),
        geomean(&so_s2_all),
        geomean(&[geomean(&so_s1_all), geomean(&so_s2_all)])
    );
    write_json("table07_unpruned", &report);
}
