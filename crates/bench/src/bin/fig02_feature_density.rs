//! Fig. 2 — density of the feature matrices of the GCN model: the input
//! features, the matrix after the Update() of each layer and the matrix
//! after the Aggregate()+activation of each layer.

use dynasparse_bench::{all_datasets, build_model, load_dataset, print_table, write_json};
use dynasparse_model::{GnnModelKind, ReferenceExecutor};
use serde::Serialize;

#[derive(Serialize)]
struct FeatureDensityRow {
    dataset: String,
    input: f64,
    stages: Vec<(String, f64)>,
}

fn main() {
    let mut rows = Vec::new();
    let mut report = Vec::new();
    for dataset in all_datasets() {
        let ds = load_dataset(dataset);
        let model = build_model(GnnModelKind::Gcn, &ds);
        let exec = ReferenceExecutor::new(&model, &ds.graph);
        let (_, trace) = exec
            .forward_trace(&ds.features)
            .expect("reference execution failed");
        let mut cells = vec![
            dataset.abbrev().to_string(),
            format!("{:.4}", trace.input_density),
        ];
        let mut stages = Vec::new();
        for stage in &trace.stages {
            cells.push(format!("{:.4}", stage.density));
            stages.push((format!("L{} {}", stage.layer + 1, stage.op), stage.density));
        }
        report.push(FeatureDensityRow {
            dataset: dataset.name().to_string(),
            input: trace.input_density,
            stages,
        });
        rows.push(cells);
    }
    print_table(
        "Fig. 2: density of the GCN feature matrices per stage",
        &["DS", "H0", "L1 Update", "L1 Agg+act", "L2 Update", "L2 Agg"],
        &rows,
    );
    write_json("fig02_feature_density", &report);
}
