//! Fig. 13 — overhead of the runtime system (dynamic K2P mapping + task
//! scheduling on the soft processor) as a fraction of the total accelerator
//! execution time, for the unpruned models.

use dynasparse_bench::{all_datasets, all_models, print_table, run_eval, write_json};
use dynasparse_runtime::MappingStrategy;
use serde::Serialize;

#[derive(Serialize)]
struct OverheadRow {
    model: String,
    dataset: String,
    overhead_fraction: f64,
    k2p_us: f64,
    scheduling_us: f64,
    decisions: usize,
}

fn main() {
    let mut report = Vec::new();
    let mut fractions = Vec::new();
    for model in all_models() {
        let mut rows = Vec::new();
        for dataset in all_datasets() {
            let rec = run_eval(model, dataset, 0.0);
            let run = rec.eval.run(MappingStrategy::Dynamic).expect("dynamic run");
            let frac = run.overhead.fraction_of_execution();
            fractions.push(frac);
            rows.push(vec![
                dataset.abbrev().to_string(),
                format!("{frac:.3}"),
                format!("{:.1}", run.overhead.k2p_seconds * 1e6),
                format!("{:.1}", run.overhead.scheduling_seconds * 1e6),
                run.total_decisions().to_string(),
            ]);
            report.push(OverheadRow {
                model: model.name().to_string(),
                dataset: dataset.name().to_string(),
                overhead_fraction: frac,
                k2p_us: run.overhead.k2p_seconds * 1e6,
                scheduling_us: run.overhead.scheduling_seconds * 1e6,
                decisions: run.total_decisions(),
            });
        }
        print_table(
            &format!(
                "Fig. 13 ({}): runtime-system overhead / execution time",
                model.name()
            ),
            &["DS", "fraction", "K2P (us)", "sched (us)", "decisions"],
            &rows,
        );
    }
    let avg = fractions.iter().sum::<f64>() / fractions.len().max(1) as f64;
    println!("\nAverage overhead fraction: {avg:.3} (paper reports 0.068 on average at full scale; the overhead is hidden by pipelining in both cases)");
    write_json("fig13_runtime_overhead", &report);
}
