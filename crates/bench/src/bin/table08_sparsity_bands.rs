//! Table VIII — geometric-mean speedup of Dynamic over S1/S2 per band of
//! weight sparsity (<50 %, 50–70 %, 70–90 %, >90 %).
//!
//! `DYNASPARSE_QUICK=1` uses one sparsity point per band and two models.

use dynasparse_bench::{
    all_datasets, all_models, geomean, print_table, quick_mode, run_eval, write_json,
};
use dynasparse_model::GnnModelKind;
use dynasparse_runtime::MappingStrategy;
use serde::Serialize;

#[derive(Serialize)]
struct BandRow {
    band: String,
    so_s1_geomean: f64,
    so_s2_geomean: f64,
    samples: usize,
}

fn main() {
    let bands: [(&str, Vec<f64>); 4] = if quick_mode() {
        [
            ("<50%", vec![0.3]),
            ("50-70%", vec![0.6]),
            ("70-90%", vec![0.8]),
            (">90%", vec![0.95]),
        ]
    } else {
        [
            ("<50%", vec![0.2, 0.4]),
            ("50-70%", vec![0.5, 0.7]),
            ("70-90%", vec![0.8, 0.9]),
            (">90%", vec![0.95, 0.99]),
        ]
    };
    let models: Vec<GnnModelKind> = if quick_mode() {
        vec![GnnModelKind::Gcn, GnnModelKind::Gin]
    } else {
        all_models().to_vec()
    };

    let mut rows = Vec::new();
    let mut report = Vec::new();
    for (band, sparsities) in &bands {
        let mut so_s1 = Vec::new();
        let mut so_s2 = Vec::new();
        for &model in &models {
            for dataset in all_datasets() {
                for &s in sparsities {
                    let rec = run_eval(model, dataset, s);
                    so_s1.push(rec.speedup_over(MappingStrategy::Static1));
                    so_s2.push(rec.speedup_over(MappingStrategy::Static2));
                }
            }
        }
        let g1 = geomean(&so_s1);
        let g2 = geomean(&so_s2);
        rows.push(vec![
            band.to_string(),
            format!("{g1:.2}x"),
            format!("{g2:.2}x"),
            so_s1.len().to_string(),
        ]);
        report.push(BandRow {
            band: band.to_string(),
            so_s1_geomean: g1,
            so_s2_geomean: g2,
            samples: so_s1.len(),
        });
    }
    print_table(
        "Table VIII: geometric-mean speedup per weight-sparsity band",
        &["band", "SO-S1", "SO-S2", "samples"],
        &rows,
    );
    write_json("table08_sparsity_bands", &report);
}
