//! Section VIII-D — end-to-end latency: preprocessing + CPU→FPGA data
//! movement + accelerator execution, the contribution of each component, and
//! the end-to-end speedup over the CPU/GPU baselines.

use dynasparse_baselines::{
    EndToEndBreakdown, EndToEndModel, FrameworkBaseline, FrameworkKind, WorkloadSummary,
};
use dynasparse_bench::{all_datasets, fmt_speedup, geomean, print_table, run_eval, write_json};
use dynasparse_compiler::ComputationGraph;
use dynasparse_model::{GnnModel, GnnModelKind};
use dynasparse_runtime::MappingStrategy;
use serde::Serialize;

#[derive(Serialize)]
struct EndToEndRow {
    dataset: String,
    preprocessing_ms: f64,
    data_movement_ms: f64,
    execution_ms: f64,
    fractions: (f64, f64, f64),
    e2e_speedups: Vec<(String, f64)>,
}

fn main() {
    let mut rows = Vec::new();
    let mut report = Vec::new();
    let mut frac_acc = (0.0, 0.0, 0.0);
    let mut e2e_speedups: std::collections::HashMap<&'static str, Vec<f64>> = Default::default();
    for dataset in all_datasets() {
        let rec = run_eval(GnnModelKind::Gcn, dataset, 0.0);
        let run = rec.eval.run(MappingStrategy::Dynamic).expect("dynamic run");
        let dynasparse = EndToEndBreakdown {
            preprocessing_ms: rec.eval.compile_ms * rec.factor,
            data_movement_ms: rec.eval.data_movement_ms * rec.factor,
            execution_ms: run.latency_ms * rec.factor,
        };
        let (fp, fm, fe) = dynasparse.fractions();
        frac_acc.0 += fp;
        frac_acc.1 += fm;
        frac_acc.2 += fe;

        // Baseline end-to-end numbers on the published-scale workload.
        let spec = dataset.spec();
        let model = GnnModel::standard(
            GnnModelKind::Gcn,
            spec.feature_dim,
            spec.hidden_dim,
            spec.num_classes,
            7,
        );
        let graph = ComputationGraph::from_model(&model, spec.num_vertices, spec.num_edges);
        let workload = WorkloadSummary::from_graph(
            &graph,
            spec.num_edges + spec.num_vertices,
            spec.feature_dim,
            spec.feature_density,
        );
        let mut cells = vec![
            dataset.abbrev().to_string(),
            format!("{:.2}", dynasparse.preprocessing_ms),
            format!("{:.2}", dynasparse.data_movement_ms),
            format!("{:.2}", dynasparse.execution_ms),
            format!("{fp:.2}/{fm:.2}/{fe:.2}"),
        ];
        let mut speedups = Vec::new();
        for kind in FrameworkKind::software() {
            let b = FrameworkBaseline::new(kind, workload.clone());
            let baseline = EndToEndBreakdown {
                preprocessing_ms: 0.0,
                data_movement_ms: b.input_transfer_ms(),
                execution_ms: b.execution_ms(),
            };
            let model = EndToEndModel {
                dynasparse,
                baseline,
            };
            let s = model.end_to_end_speedup();
            e2e_speedups.entry(kind.name()).or_default().push(s);
            cells.push(fmt_speedup(s));
            speedups.push((kind.name().to_string(), s));
        }
        rows.push(cells);
        report.push(EndToEndRow {
            dataset: dataset.name().to_string(),
            preprocessing_ms: dynasparse.preprocessing_ms,
            data_movement_ms: dynasparse.data_movement_ms,
            execution_ms: dynasparse.execution_ms,
            fractions: (fp, fm, fe),
            e2e_speedups: speedups,
        });
    }
    print_table(
        "End-to-end latency breakdown (GCN) and end-to-end speedup over CPU/GPU",
        &[
            "DS",
            "preproc",
            "movement",
            "exec",
            "fractions",
            "vs PyG-CPU",
            "vs PyG-GPU",
            "vs DGL-CPU",
            "vs DGL-GPU",
        ],
        &rows,
    );
    let n = all_datasets().len() as f64;
    println!(
        "\nAverage contribution: preprocessing {:.1}%, data movement {:.1}%, execution {:.1}%",
        100.0 * frac_acc.0 / n,
        100.0 * frac_acc.1 / n,
        100.0 * frac_acc.2 / n
    );
    println!("Geometric-mean end-to-end speedups:");
    for kind in FrameworkKind::software() {
        println!(
            "  vs {:8}: {:.2}x",
            kind.name(),
            geomean(&e2e_speedups[kind.name()])
        );
    }
    write_json("end_to_end_breakdown", &report);
}
