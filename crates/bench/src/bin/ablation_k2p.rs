//! Ablation: quality of the closed-form dynamic kernel-to-primitive mapping.
//!
//! 1. Over a grid of operand densities, compare the primitive chosen by the
//!    Dynamic strategy (the closed-form regions of Section VI-A) against the
//!    exhaustive per-pair oracle and against the static strategies, in
//!    predicted cycles.
//! 2. Validate the analytic Table IV model against the detailed
//!    micro-architecture simulation on random blocks.

use dynasparse_accel::{AcceleratorConfig, ComputationCore, PerformanceModel, Primitive};
use dynasparse_bench::print_table;
use dynasparse_compiler::KernelKind;
use dynasparse_matrix::format::FormattedBlock;
use dynasparse_matrix::random::random_dense;
use dynasparse_runtime::MappingStrategy;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let perf = PerformanceModel::new(16);
    let densities = [0.001, 0.01, 0.05, 0.1, 0.125, 0.2, 0.3, 0.5, 0.8, 1.0];
    let (m, n, d) = (256, 256, 128);

    // Part 1: strategy quality over the density grid.
    let mut rows = Vec::new();
    let mut dynamic_total = 0u64;
    let mut oracle_total = 0u64;
    let mut s1_total = 0u64;
    let mut s2_total = 0u64;
    for &ax in &densities {
        for &ay in &densities {
            let cost = |s: MappingStrategy| {
                let dec = s.decide(KernelKind::Update, ax, ay, &perf);
                s.pair_cycles(&dec, m, n, d, ax, ay, &perf)
            };
            dynamic_total += cost(MappingStrategy::Dynamic);
            oracle_total += cost(MappingStrategy::Oracle);
            s1_total += cost(MappingStrategy::Static1);
            s2_total += cost(MappingStrategy::Static2);
        }
    }
    rows.push(vec![
        "Update 256x256x128 grid".to_string(),
        dynamic_total.to_string(),
        oracle_total.to_string(),
        s1_total.to_string(),
        s2_total.to_string(),
        format!("{:.3}", dynamic_total as f64 / oracle_total as f64),
    ]);
    print_table(
        "Ablation 1: total predicted cycles over the density grid",
        &[
            "scenario",
            "Dynamic",
            "Oracle",
            "S1",
            "S2",
            "Dynamic/Oracle",
        ],
        &rows,
    );

    // Part 2: analytic vs detailed model.
    let core = ComputationCore::new(AcceleratorConfig::default());
    let mut rng = StdRng::seed_from_u64(99);
    let mut rows = Vec::new();
    for &(ax, ay, primitive) in &[
        (1.0, 1.0, Primitive::Gemm),
        (0.2, 1.0, Primitive::SpDmm),
        (0.05, 1.0, Primitive::SpDmm),
        (0.05, 0.05, Primitive::Spmm),
        (0.01, 0.02, Primitive::Spmm),
    ] {
        let x = random_dense(&mut rng, 128, 128, ax);
        let y = random_dense(&mut rng, 128, 64, ay);
        let analytic = perf.execution_cycles(primitive, 128, 128, 64, x.density(), y.density());
        let detailed = core.execute_pair_detailed(
            primitive,
            &FormattedBlock::Dense(x),
            &FormattedBlock::Dense(y),
        );
        rows.push(vec![
            primitive.label().to_string(),
            format!("{ax:.2}/{ay:.2}"),
            analytic.to_string(),
            detailed.cycles.to_string(),
            format!("{:.2}", detailed.cycles as f64 / analytic.max(1) as f64),
        ]);
    }
    print_table(
        "Ablation 2: analytic Table IV model vs detailed micro-architecture simulation (128x128x64 blocks)",
        &["primitive", "densities", "analytic cycles", "detailed cycles", "ratio"],
        &rows,
    );
}
