//! Fig. 1 — density of the graph adjacency matrix `A` of the benchmark
//! graphs, plus the block-level density spread that motivates fine-grained
//! kernel-to-primitive mapping ("different parts of the matrix have
//! different densities").

use dynasparse_bench::{all_datasets, load_dataset, print_table};
use dynasparse_matrix::{DensityProfile, PartitionSpec};

fn main() {
    let mut rows = Vec::new();
    for dataset in all_datasets() {
        let ds = load_dataset(dataset);
        let spec = PartitionSpec::new(256, 64).expect("valid partition");
        let grid = spec.adjacency_grid(ds.num_vertices());
        let profile = DensityProfile::of_csr(ds.graph.adjacency(), &grid);
        rows.push(vec![
            dataset.abbrev().to_string(),
            format!("{:.5}%", ds.adjacency_density() * 100.0),
            format!("{:.5}%", dataset.spec().adjacency_density * 100.0),
            format!("{:.5}%", profile.min_block_density() * 100.0),
            format!("{:.5}%", profile.max_block_density() * 100.0),
            format!(
                "{:.1}%",
                100.0 * profile.empty_blocks() as f64 / profile.block_count() as f64
            ),
        ]);
    }
    print_table(
        "Fig. 1: adjacency-matrix density (generated vs published) and 256x256 block spread",
        &[
            "DS",
            "density(A)",
            "published",
            "min block",
            "max block",
            "empty blocks",
        ],
        &rows,
    );
}
