//! Fig. 14 — speedup of Dynasparse over the CPU/GPU baselines (PyG and DGL on
//! the Ryzen 3990x and the RTX3090), in accelerator execution latency, for
//! the unpruned models.
//!
//! The baseline latencies come from the analytic roofline models of
//! `dynasparse-baselines`, fed with the published platform numbers
//! (Table V) and the *published-scale* workload; the Dynasparse latency is
//! the simulated dynamic-mapping latency extrapolated to published scale.

use dynasparse_baselines::{FrameworkBaseline, FrameworkKind, WorkloadSummary};
use dynasparse_bench::{
    all_datasets, all_models, fmt_speedup, geomean, print_table, run_eval, write_json,
};
use dynasparse_compiler::ComputationGraph;
use dynasparse_model::GnnModel;
use dynasparse_runtime::MappingStrategy;
use serde::Serialize;

#[derive(Serialize)]
struct Fig14Row {
    model: String,
    dataset: String,
    dynasparse_ms: f64,
    baselines_ms: Vec<(String, f64)>,
    speedups: Vec<(String, f64)>,
}

fn published_workload(
    kind: dynasparse_model::GnnModelKind,
    dataset: dynasparse_graph::Dataset,
) -> WorkloadSummary {
    let spec = dataset.spec();
    let model = GnnModel::standard(kind, spec.feature_dim, spec.hidden_dim, spec.num_classes, 7);
    let graph = ComputationGraph::from_model(&model, spec.num_vertices, spec.num_edges);
    WorkloadSummary::from_graph(
        &graph,
        spec.num_edges + spec.num_vertices,
        spec.feature_dim,
        spec.feature_density,
    )
}

fn main() {
    let mut report = Vec::new();
    let mut per_baseline_speedups: std::collections::HashMap<&'static str, Vec<f64>> =
        std::collections::HashMap::new();
    for model in all_models() {
        let mut rows = Vec::new();
        for dataset in all_datasets() {
            let rec = run_eval(model, dataset, 0.0);
            let dynasparse_ms = rec.latency_ms(MappingStrategy::Dynamic);
            let workload = published_workload(model, dataset);
            let mut cells = vec![dataset.abbrev().to_string(), format!("{dynasparse_ms:.3}")];
            let mut baselines_ms = Vec::new();
            let mut speedups = Vec::new();
            for kind in FrameworkKind::software() {
                let baseline = FrameworkBaseline::new(kind, workload.clone());
                let ms = baseline.execution_ms();
                let speedup = ms / dynasparse_ms;
                per_baseline_speedups
                    .entry(kind.name())
                    .or_default()
                    .push(speedup);
                cells.push(fmt_speedup(speedup));
                baselines_ms.push((kind.name().to_string(), ms));
                speedups.push((kind.name().to_string(), speedup));
            }
            rows.push(cells);
            report.push(Fig14Row {
                model: model.name().to_string(),
                dataset: dataset.name().to_string(),
                dynasparse_ms,
                baselines_ms,
                speedups,
            });
        }
        print_table(
            &format!(
                "Fig. 14 ({}): speedup of Dynasparse over CPU/GPU frameworks",
                model.name()
            ),
            &[
                "DS",
                "Dyna (ms)",
                "vs PyG-CPU",
                "vs PyG-GPU",
                "vs DGL-CPU",
                "vs DGL-GPU",
            ],
            &rows,
        );
    }
    println!("\nGeometric-mean speedups across models and datasets:");
    for kind in FrameworkKind::software() {
        let speedups = &per_baseline_speedups[kind.name()];
        println!("  vs {:8}: {:.1}x", kind.name(), geomean(speedups));
    }
    write_json("fig14_cpu_gpu", &report);
}
