//! Shared infrastructure for the experiment harnesses.
//!
//! Every table and figure of the paper's evaluation section has a dedicated
//! binary in `src/bin/`; they all go through the helpers here so that the
//! dataset scaling policy, model construction and report formatting are
//! consistent and recorded in one place.
//!
//! ## Dataset scaling
//!
//! The two largest graphs (and, on small hosts, Flickr/NELL as well) are too
//! expensive for the *functional* executor to run at published scale on a
//! laptop-class machine, so the harnesses generate structurally similar
//! instances at a reduced scale (preserving average degree, feature dimension
//! and feature density) and extrapolate the simulated latency linearly back
//! to the published vertex/edge counts.  Set `DYNASPARSE_FULL_SCALE=1` to
//! force published sizes.  EXPERIMENTS.md documents the scale used for every
//! reported number.

#![warn(missing_docs)]

use dynasparse::{Engine, EngineOptions, MappingStrategy, Planner};
use dynasparse_graph::{Dataset, GraphDataset};
use dynasparse_model::{GnnModel, GnnModelKind};
use serde::Serialize;

/// Default generation scale per dataset (fraction of the published vertex
/// count) used by the harnesses.
pub fn default_scale(dataset: Dataset) -> f64 {
    if std::env::var("DYNASPARSE_FULL_SCALE")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        return 1.0;
    }
    match dataset {
        Dataset::CiteSeer | Dataset::Cora => 1.0,
        Dataset::PubMed => 1.0,
        Dataset::Flickr => 0.08,
        Dataset::Nell => 0.20,
        Dataset::Reddit => 0.01,
    }
}

/// Generates the harness instance of a dataset (seeded, at the default
/// scale).
pub fn load_dataset(dataset: Dataset) -> GraphDataset {
    dataset.spec().generate_scaled(2023, default_scale(dataset))
}

/// Factor by which simulated latencies are extrapolated back to published
/// scale (latency is linear in `|V|` and `|E|` at fixed feature dimensions).
pub fn extrapolation_factor(ds: &GraphDataset) -> f64 {
    1.0 / ds.scale
}

/// Builds the paper's standard 2-layer model of `kind` for a dataset
/// (hidden dimension 16 for the citation graphs, 128 for the large graphs).
pub fn build_model(kind: GnnModelKind, ds: &GraphDataset) -> GnnModel {
    GnnModel::standard(
        kind,
        ds.features.dim(),
        ds.spec.hidden_dim,
        ds.spec.num_classes,
        7,
    )
}

/// The engine used by every harness (paper-default hardware configuration).
pub fn engine() -> Engine {
    Engine::new(EngineOptions::default())
}

/// The planner used by harnesses on the compile-once / serve-many path
/// (paper-default hardware configuration).
pub fn planner() -> Planner {
    Planner::new(EngineOptions::default())
}

/// The three mapping strategies of Table VII, in paper order.
pub fn paper_strategies() -> [MappingStrategy; 3] {
    MappingStrategy::paper_strategies()
}

/// Prints a fixed-width table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let joined: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("  {}", joined.join("  "));
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Writes a JSON report next to the binary outputs (under `target/reports/`).
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("target/reports");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(json) = serde_json::to_string_pretty(value) {
        let _ = std::fs::write(&path, json);
        println!("  [report written to {}]", path.display());
    }
}

/// Formats a latency in engineering notation (ms).
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 100.0 {
        format!("{ms:.0}")
    } else if ms >= 1.0 {
        format!("{ms:.2}")
    } else {
        format!("{ms:.2e}")
    }
}

/// Formats a speedup.
pub fn fmt_speedup(x: f64) -> String {
    format!("{x:.2}x")
}

/// Geometric mean of a slice (ignores non-positive entries).
pub fn geomean(values: &[f64]) -> f64 {
    let positive: Vec<f64> = values.iter().copied().filter(|&v| v > 0.0).collect();
    if positive.is_empty() {
        return 0.0;
    }
    (positive.iter().map(|v| v.ln()).sum::<f64>() / positive.len() as f64).exp()
}

/// One (model, dataset) evaluation together with the latency extrapolation
/// factor back to published scale.
pub struct EvalRecord {
    /// Which dataset was evaluated.
    pub dataset: Dataset,
    /// Which model was evaluated.
    pub model: GnnModelKind,
    /// The engine evaluation (all paper strategies priced).
    pub eval: dynasparse::Evaluation,
    /// Multiply simulated latencies by this to report published-scale
    /// numbers.
    pub factor: f64,
}

impl EvalRecord {
    /// Extrapolated accelerator latency (ms) of one strategy.
    pub fn latency_ms(&self, strategy: MappingStrategy) -> f64 {
        self.eval
            .run(strategy)
            .map(|r| r.latency_ms * self.factor)
            .unwrap_or(f64::NAN)
    }

    /// Speedup of Dynamic over `other`.
    pub fn speedup_over(&self, other: MappingStrategy) -> f64 {
        self.eval
            .speedup(other, MappingStrategy::Dynamic)
            .unwrap_or(f64::NAN)
    }
}

/// Runs one (model, dataset) evaluation under the three paper strategies,
/// optionally pruning all weights to `weight_sparsity`.
pub fn run_eval(kind: GnnModelKind, dataset: Dataset, weight_sparsity: f64) -> EvalRecord {
    let ds = load_dataset(dataset);
    let mut model = build_model(kind, &ds);
    if weight_sparsity > 0.0 {
        model = dynasparse_model::prune_model(&model, weight_sparsity);
    }
    // Compile once, serve the (single) harness request from a session; this
    // is numerically identical to the one-shot Engine::evaluate path.
    let plan = planner().plan(&model, &ds).expect("planning failed");
    let mut session = plan.session(&paper_strategies());
    let report = session.infer(&ds.features).expect("inference failed");
    let eval = report.into_evaluation(&plan);
    EvalRecord {
        dataset,
        model: kind,
        factor: extrapolation_factor(&ds),
        eval,
    }
}

/// Returns `true` when the harness should run in reduced (quick) mode
/// (`DYNASPARSE_QUICK=1`).
pub fn quick_mode() -> bool {
    std::env::var("DYNASPARSE_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// All model kinds in paper order.
pub fn all_models() -> [GnnModelKind; 4] {
    GnnModelKind::all()
}

/// All datasets in paper order.
pub fn all_datasets() -> [Dataset; 6] {
    Dataset::all()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_matches_hand_computation() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 0.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn default_scales_are_in_range() {
        for ds in all_datasets() {
            let s = default_scale(ds);
            assert!(s > 0.0 && s <= 1.0);
        }
        // Small citation graphs run at published scale.
        assert_eq!(default_scale(Dataset::Cora), 1.0);
    }

    #[test]
    fn model_builder_uses_the_dataset_dimensions() {
        let ds = Dataset::Cora.spec().generate_scaled(1, 0.1);
        let m = build_model(GnnModelKind::Gcn, &ds);
        assert_eq!(m.input_dim, ds.features.dim());
        assert_eq!(m.output_dim, ds.spec.num_classes);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_speedup(2.0), "2.00x");
        assert!(fmt_ms(0.0077).contains("e"));
        assert_eq!(fmt_ms(12.345), "12.35");
    }
}
