//! Analytic latency models of the baseline GNN software frameworks and the
//! prior GNN accelerators.
//!
//! All baselines share one structural property the paper leans on: they
//! exploit **only the sparsity of the graph structure** (their aggregation is
//! a CSR SpMM), never the sparsity of the feature matrices or of the pruned
//! weight matrices.  Their per-kernel work is therefore
//!
//! * Aggregate: `2 · nnz(A) · f` FLOPs, streaming the CSR structure and the
//!   feature matrix;
//! * Update: `2 · |V| · f_in · f_out` FLOPs of dense GEMM.
//!
//! Each baseline is a roofline over the published platform numbers
//! (Table V), scaled by an achieved-efficiency factor that captures how well
//! the framework/accelerator uses its platform for these irregular, small
//! kernels, plus a fixed per-kernel dispatch overhead (framework/kernel
//! launch).  The efficiency factors are calibrated so the relative ordering
//! matches the published comparisons; EXPERIMENTS.md records the calibration.

use crate::platforms::PlatformSpec;
use dynasparse_compiler::{ComputationGraph, KernelKind};
use serde::{Deserialize, Serialize};

/// Per-kernel workload description used by the baseline models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelWork {
    /// Aggregate or Update.
    pub kind: KernelKind,
    /// FLOPs the baseline performs for this kernel.
    pub flops: f64,
    /// Bytes the baseline streams for this kernel.
    pub bytes: f64,
}

/// The whole model's workload as a baseline framework sees it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSummary {
    /// Per-kernel work in execution order.
    pub kernels: Vec<KernelWork>,
    /// Bytes of input data (graph + features + weights) the platform must
    /// ingest before execution.
    pub input_bytes: f64,
}

impl WorkloadSummary {
    /// Builds the workload from a compiled computation graph and the measured
    /// graph/feature statistics.  `nnz_adjacency` should include self-loops;
    /// `feature_density` is only used for the input-transfer size (frameworks
    /// still compute densely).
    pub fn from_graph(
        graph: &ComputationGraph,
        nnz_adjacency: usize,
        input_feature_dim: usize,
        feature_density: f64,
    ) -> Self {
        let kernels = graph
            .kernels
            .iter()
            .map(|k| match k.kind {
                KernelKind::Aggregate => {
                    let flops = 2.0 * nnz_adjacency as f64 * k.output_dim as f64;
                    let bytes = 8.0 * nnz_adjacency as f64
                        + 8.0 * k.num_vertices as f64 * k.output_dim as f64;
                    KernelWork {
                        kind: k.kind,
                        flops,
                        bytes,
                    }
                }
                KernelKind::Update => {
                    let flops =
                        2.0 * k.num_vertices as f64 * k.input_dim as f64 * k.output_dim as f64;
                    let bytes = 4.0
                        * (k.num_vertices as f64 * (k.input_dim + k.output_dim) as f64
                            + (k.input_dim * k.output_dim) as f64);
                    KernelWork {
                        kind: k.kind,
                        flops,
                        bytes,
                    }
                }
            })
            .collect();
        let num_vertices = graph.kernels.first().map(|k| k.num_vertices).unwrap_or(0) as f64;
        let input_bytes = 12.0 * nnz_adjacency as f64
            + 4.0
                * num_vertices
                * input_feature_dim as f64
                * feature_density.clamp(0.0, 1.0).max(0.01);
        WorkloadSummary {
            kernels,
            input_bytes,
        }
    }

    /// Total FLOPs across kernels.
    pub fn total_flops(&self) -> f64 {
        self.kernels.iter().map(|k| k.flops).sum()
    }

    /// Total bytes streamed across kernels.
    pub fn total_bytes(&self) -> f64 {
        self.kernels.iter().map(|k| k.bytes).sum()
    }
}

/// Which baseline implementation is being modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FrameworkKind {
    /// PyTorch Geometric on the CPU.
    PygCpu,
    /// PyTorch Geometric on the GPU.
    PygGpu,
    /// Deep Graph Library on the CPU.
    DglCpu,
    /// Deep Graph Library on the GPU.
    DglGpu,
    /// HyGCN (ASIC accelerator, static mapping).
    HyGcn,
    /// BoostGCN (Stratix 10 FPGA accelerator, static mapping).
    BoostGcn,
}

impl FrameworkKind {
    /// The four software frameworks of Fig. 14.
    pub fn software() -> [FrameworkKind; 4] {
        [
            FrameworkKind::PygCpu,
            FrameworkKind::PygGpu,
            FrameworkKind::DglCpu,
            FrameworkKind::DglGpu,
        ]
    }

    /// The two prior accelerators of Table X.
    pub fn accelerators() -> [FrameworkKind; 2] {
        [FrameworkKind::HyGcn, FrameworkKind::BoostGcn]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            FrameworkKind::PygCpu => "PyG-CPU",
            FrameworkKind::PygGpu => "PyG-GPU",
            FrameworkKind::DglCpu => "DGL-CPU",
            FrameworkKind::DglGpu => "DGL-GPU",
            FrameworkKind::HyGcn => "HyGCN",
            FrameworkKind::BoostGcn => "BoostGCN",
        }
    }

    /// The platform this baseline runs on.
    pub fn platform(self) -> PlatformSpec {
        match self {
            FrameworkKind::PygCpu | FrameworkKind::DglCpu => PlatformSpec::cpu_ryzen_3990x(),
            FrameworkKind::PygGpu | FrameworkKind::DglGpu => PlatformSpec::gpu_rtx3090(),
            FrameworkKind::HyGcn => PlatformSpec::hygcn(),
            FrameworkKind::BoostGcn => PlatformSpec::boostgcn(),
        }
    }

    /// Achieved fraction of peak FLOPS on irregular GNN kernels.
    ///
    /// The GPU fractions are deliberately low: full-graph inference on these
    /// graphs uses small hidden dimensions and sparse scatter/gather
    /// operations, so the frameworks leave most of the 36 TFLOPS idle.  The
    /// paper's own relative numbers imply the same (PyG-GPU is only ~19×
    /// faster than PyG-CPU and DGL-GPU only ~4× faster than DGL-CPU).
    fn compute_efficiency(self) -> f64 {
        match self {
            FrameworkKind::PygCpu => 0.03,
            FrameworkKind::DglCpu => 0.06,
            FrameworkKind::PygGpu => 0.012,
            FrameworkKind::DglGpu => 0.008,
            // HyGCN's hybrid dataflow under-utilizes badly for the small
            // hidden dimensions of these models (the paper observes the
            // same: it loses to BoostGCN despite 7x the peak).
            FrameworkKind::HyGcn => 0.004,
            FrameworkKind::BoostGcn => 0.25,
        }
    }

    /// Achieved fraction of peak memory bandwidth.
    fn memory_efficiency(self) -> f64 {
        match self {
            FrameworkKind::PygCpu => 0.25,
            FrameworkKind::DglCpu => 0.4,
            FrameworkKind::PygGpu => 0.35,
            FrameworkKind::DglGpu => 0.35,
            FrameworkKind::HyGcn => 0.4,
            FrameworkKind::BoostGcn => 0.5,
        }
    }

    /// Fixed per-kernel dispatch overhead in seconds (framework call / GPU
    /// kernel launch / accelerator configuration).
    fn dispatch_overhead_seconds(self) -> f64 {
        match self {
            FrameworkKind::PygCpu | FrameworkKind::DglCpu => 40e-6,
            FrameworkKind::PygGpu | FrameworkKind::DglGpu => 15e-6,
            FrameworkKind::HyGcn | FrameworkKind::BoostGcn => 5e-6,
        }
    }
}

/// A baseline bound to a workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameworkBaseline {
    /// Which baseline this is.
    pub kind: FrameworkKind,
    /// The workload being executed.
    pub workload: WorkloadSummary,
}

impl FrameworkBaseline {
    /// Creates the baseline model for a workload.
    pub fn new(kind: FrameworkKind, workload: WorkloadSummary) -> Self {
        FrameworkBaseline { kind, workload }
    }

    /// Execution latency (milliseconds) of the workload on this baseline —
    /// the quantity compared against the accelerator latency in Fig. 14 and
    /// Table X.
    pub fn execution_ms(&self) -> f64 {
        let platform = self.kind.platform();
        let ce = self.kind.compute_efficiency();
        let me = self.kind.memory_efficiency();
        let dispatch = self.kind.dispatch_overhead_seconds();
        let seconds: f64 = self
            .workload
            .kernels
            .iter()
            .map(|k| platform.roofline_seconds(k.flops, k.bytes, ce, me) + dispatch)
            .sum();
        seconds * 1e3
    }

    /// Host-to-device input transfer time in milliseconds (zero for CPU
    /// baselines, PCIe for the GPU, not charged for the fixed-function
    /// accelerators which the paper also excludes).
    pub fn input_transfer_ms(&self) -> f64 {
        self.kind
            .platform()
            .interconnect_seconds(self.workload.input_bytes)
            * 1e3
    }

    /// End-to-end latency: input transfer + execution (software frameworks
    /// have no compiler preprocessing step).
    pub fn end_to_end_ms(&self) -> f64 {
        self.input_transfer_ms() + self.execution_ms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynasparse_model::GnnModel;

    fn cora_workload() -> WorkloadSummary {
        let model = GnnModel::gcn(1433, 16, 7, 0);
        let graph = ComputationGraph::from_model(&model, 2708, 5429);
        WorkloadSummary::from_graph(&graph, 5429 + 2708, 1433, 0.0127)
    }

    #[test]
    fn workload_flops_match_hand_computation() {
        let w = cora_workload();
        assert_eq!(w.kernels.len(), 4);
        // First Update: 2 * |V| * 1433 * 16.
        let expect = 2.0 * 2708.0 * 1433.0 * 16.0;
        assert!((w.kernels[0].flops - expect).abs() < 1.0);
        // First Aggregate: 2 * nnz * 16.
        let expect = 2.0 * (5429.0 + 2708.0) * 16.0;
        assert!((w.kernels[1].flops - expect).abs() < 1.0);
        assert!(w.total_flops() > 0.0);
        assert!(w.total_bytes() > 0.0);
    }

    #[test]
    fn cpu_is_slower_than_gpu_for_the_same_framework() {
        let w = cora_workload();
        let pyg_cpu = FrameworkBaseline::new(FrameworkKind::PygCpu, w.clone()).execution_ms();
        let pyg_gpu = FrameworkBaseline::new(FrameworkKind::PygGpu, w).execution_ms();
        assert!(pyg_cpu > pyg_gpu);
    }

    #[test]
    fn dgl_cpu_beats_pyg_cpu() {
        let w = cora_workload();
        let pyg = FrameworkBaseline::new(FrameworkKind::PygCpu, w.clone()).execution_ms();
        let dgl = FrameworkBaseline::new(FrameworkKind::DglCpu, w).execution_ms();
        assert!(dgl < pyg);
    }

    #[test]
    fn boostgcn_beats_hygcn_despite_lower_peak() {
        // The paper's Table X shows the same inversion.
        let w = cora_workload();
        let hygcn = FrameworkBaseline::new(FrameworkKind::HyGcn, w.clone()).execution_ms();
        let boostgcn = FrameworkBaseline::new(FrameworkKind::BoostGcn, w).execution_ms();
        assert!(boostgcn < hygcn);
    }

    #[test]
    fn gpu_pays_an_input_transfer_cost() {
        let w = cora_workload();
        let cpu = FrameworkBaseline::new(FrameworkKind::DglCpu, w.clone());
        let gpu = FrameworkBaseline::new(FrameworkKind::DglGpu, w);
        assert_eq!(cpu.input_transfer_ms(), 0.0);
        assert!(gpu.input_transfer_ms() > 0.0);
        assert!(gpu.end_to_end_ms() > gpu.execution_ms());
    }

    #[test]
    fn framework_name_and_grouping() {
        assert_eq!(FrameworkKind::software().len(), 4);
        assert_eq!(FrameworkKind::accelerators().len(), 2);
        assert_eq!(FrameworkKind::PygCpu.name(), "PyG-CPU");
        assert_eq!(FrameworkKind::BoostGcn.name(), "BoostGCN");
    }
}
