//! End-to-end latency accounting (Section VIII-D of the paper).
//!
//! The paper defines end-to-end latency as the sum of (1) compilation /
//! preprocessing on the host, (2) CPU→FPGA data movement over PCIe, and
//! (3) accelerator execution, and reports that the three contribute roughly
//! 43 % / 27 % / 28 % on average.  This module packages that accounting for
//! the Dynasparse side and for the CPU/GPU baselines (which have no
//! preprocessing step, and a PCIe transfer only on the GPU).

use serde::{Deserialize, Serialize};

/// The three end-to-end components, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EndToEndBreakdown {
    /// Compilation / preprocessing time on the host.
    pub preprocessing_ms: f64,
    /// Host-to-device data movement.
    pub data_movement_ms: f64,
    /// Device execution time.
    pub execution_ms: f64,
}

impl EndToEndBreakdown {
    /// Total end-to-end latency.
    pub fn total_ms(&self) -> f64 {
        self.preprocessing_ms + self.data_movement_ms + self.execution_ms
    }

    /// Fraction contributed by each component `(preprocessing, movement,
    /// execution)`.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let total = self.total_ms();
        if total <= 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.preprocessing_ms / total,
            self.data_movement_ms / total,
            self.execution_ms / total,
        )
    }
}

/// Builder for end-to-end comparisons between Dynasparse and a baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EndToEndModel {
    /// Dynasparse's breakdown for the workload.
    pub dynasparse: EndToEndBreakdown,
    /// The baseline's breakdown for the same workload.
    pub baseline: EndToEndBreakdown,
}

impl EndToEndModel {
    /// Speedup of Dynasparse over the baseline in end-to-end latency.
    pub fn end_to_end_speedup(&self) -> f64 {
        let d = self.dynasparse.total_ms();
        if d <= 0.0 {
            return 0.0;
        }
        self.baseline.total_ms() / d
    }

    /// Speedup of Dynasparse over the baseline in execution latency only
    /// (the Fig. 14 metric).
    pub fn execution_speedup(&self) -> f64 {
        if self.dynasparse.execution_ms <= 0.0 {
            return 0.0;
        }
        self.baseline.execution_ms / self.dynasparse.execution_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_fractions() {
        let b = EndToEndBreakdown {
            preprocessing_ms: 4.0,
            data_movement_ms: 3.0,
            execution_ms: 3.0,
        };
        assert!((b.total_ms() - 10.0).abs() < 1e-12);
        let (p, m, e) = b.fractions();
        assert!((p - 0.4).abs() < 1e-12);
        assert!((m - 0.3).abs() < 1e-12);
        assert!((e - 0.3).abs() < 1e-12);
    }

    #[test]
    fn zero_total_is_handled() {
        let b = EndToEndBreakdown {
            preprocessing_ms: 0.0,
            data_movement_ms: 0.0,
            execution_ms: 0.0,
        };
        assert_eq!(b.fractions(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn speedups_compare_the_right_quantities() {
        let m = EndToEndModel {
            dynasparse: EndToEndBreakdown {
                preprocessing_ms: 4.0,
                data_movement_ms: 3.0,
                execution_ms: 3.0,
            },
            baseline: EndToEndBreakdown {
                preprocessing_ms: 0.0,
                data_movement_ms: 5.0,
                execution_ms: 45.0,
            },
        };
        assert!((m.end_to_end_speedup() - 5.0).abs() < 1e-12);
        assert!((m.execution_speedup() - 15.0).abs() < 1e-12);
        // End-to-end speedup is smaller than execution speedup because the
        // preprocessing and data movement dilute it — the same effect the
        // paper reports (306x execution vs 56.9x end-to-end against PyG-CPU).
        assert!(m.end_to_end_speedup() < m.execution_speedup());
    }
}
