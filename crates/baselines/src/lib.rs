//! Baseline platform models for the Dynasparse evaluation.
//!
//! The paper compares its FPGA design against
//!
//! * **CPU / GPU frameworks** — PyTorch Geometric and DGL on an AMD Ryzen
//!   3990x and an Nvidia RTX3090 (Fig. 14 and the end-to-end discussion of
//!   Section VIII-D);
//! * **GNN accelerators** — HyGCN (ASIC) and BoostGCN (Stratix 10 FPGA),
//!   both of which use static kernel-to-primitive mappings (Table X).
//!
//! We cannot run PyG/DGL or the authors' accelerators here, so this crate
//! models each baseline with a roofline-style analytic model parameterised by
//! the published platform numbers of Table V (peak FLOPS, memory bandwidth)
//! and by *which kinds of sparsity the baseline exploits*: the CPU/GPU
//! frameworks and the prior accelerators exploit only the sparsity of the
//! graph structure, never the sparsity of feature or weight matrices — that
//! difference, not the raw peak numbers, is what produces the speedup shape
//! the paper reports.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod end_to_end;
pub mod frameworks;
pub mod platforms;

pub use end_to_end::{EndToEndBreakdown, EndToEndModel};
pub use frameworks::{FrameworkBaseline, FrameworkKind, WorkloadSummary};
pub use platforms::PlatformSpec;
