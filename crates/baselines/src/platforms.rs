//! Platform specifications (Table V of the paper).

use serde::{Deserialize, Serialize};

/// Peak-performance and memory characteristics of one evaluation platform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlatformSpec {
    /// Human-readable platform name.
    pub name: &'static str,
    /// Peak throughput in TFLOPS (single precision).
    pub peak_tflops: f64,
    /// Memory bandwidth in GB/s.
    pub memory_bandwidth_gbps: f64,
    /// Host-interconnect bandwidth in GB/s (PCIe) used for end-to-end
    /// accounting; zero when not applicable.
    pub interconnect_gbps: f64,
}

impl PlatformSpec {
    /// AMD Ryzen 3990x (the paper's CPU baseline).
    pub fn cpu_ryzen_3990x() -> Self {
        PlatformSpec {
            name: "AMD Ryzen 3990x",
            peak_tflops: 3.7,
            memory_bandwidth_gbps: 107.0,
            interconnect_gbps: 0.0,
        }
    }

    /// Nvidia RTX3090 (the paper's GPU baseline).
    pub fn gpu_rtx3090() -> Self {
        PlatformSpec {
            name: "Nvidia RTX3090",
            peak_tflops: 36.0,
            memory_bandwidth_gbps: 936.2,
            interconnect_gbps: 31.5,
        }
    }

    /// HyGCN (ASIC, TSMC 12 nm).
    pub fn hygcn() -> Self {
        PlatformSpec {
            name: "HyGCN",
            peak_tflops: 4.608,
            memory_bandwidth_gbps: 256.0,
            interconnect_gbps: 0.0,
        }
    }

    /// BoostGCN (Intel Stratix 10 GX FPGA).
    pub fn boostgcn() -> Self {
        PlatformSpec {
            name: "BoostGCN",
            peak_tflops: 0.64,
            memory_bandwidth_gbps: 77.0,
            interconnect_gbps: 0.0,
        }
    }

    /// Dynasparse on the Alveo U250 (for reference comparisons).
    pub fn dynasparse_u250() -> Self {
        PlatformSpec {
            name: "Dynasparse (Alveo U250)",
            peak_tflops: 0.512,
            memory_bandwidth_gbps: 77.0,
            interconnect_gbps: 11.2,
        }
    }

    /// Seconds to perform `flops` floating-point operations at an achieved
    /// efficiency of `efficiency` (0–1] of peak.
    pub fn compute_seconds(&self, flops: f64, efficiency: f64) -> f64 {
        let eff = efficiency.clamp(1e-6, 1.0);
        flops / (self.peak_tflops * 1e12 * eff)
    }

    /// Seconds to move `bytes` through the memory system at an achieved
    /// efficiency of `efficiency` of peak bandwidth.
    pub fn memory_seconds(&self, bytes: f64, efficiency: f64) -> f64 {
        let eff = efficiency.clamp(1e-6, 1.0);
        bytes / (self.memory_bandwidth_gbps * 1e9 * eff)
    }

    /// Roofline execution time: the max of the compute and memory times.
    pub fn roofline_seconds(
        &self,
        flops: f64,
        bytes: f64,
        compute_eff: f64,
        memory_eff: f64,
    ) -> f64 {
        self.compute_seconds(flops, compute_eff)
            .max(self.memory_seconds(bytes, memory_eff))
    }

    /// Seconds to move `bytes` over the host interconnect (0 if none).
    pub fn interconnect_seconds(&self, bytes: f64) -> f64 {
        if self.interconnect_gbps <= 0.0 {
            0.0
        } else {
            bytes / (self.interconnect_gbps * 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_v_numbers_are_reproduced() {
        assert_eq!(PlatformSpec::cpu_ryzen_3990x().peak_tflops, 3.7);
        assert_eq!(PlatformSpec::gpu_rtx3090().peak_tflops, 36.0);
        assert_eq!(PlatformSpec::hygcn().peak_tflops, 4.608);
        assert_eq!(PlatformSpec::boostgcn().peak_tflops, 0.64);
        assert_eq!(PlatformSpec::dynasparse_u250().peak_tflops, 0.512);
        // The paper notes the CPU and GPU have 7.2x / 70x higher peak
        // performance than Dynasparse.
        let dyn_peak = PlatformSpec::dynasparse_u250().peak_tflops;
        assert!((PlatformSpec::cpu_ryzen_3990x().peak_tflops / dyn_peak - 7.2).abs() < 0.1);
        assert!((PlatformSpec::gpu_rtx3090().peak_tflops / dyn_peak - 70.3).abs() < 0.5);
    }

    #[test]
    fn roofline_is_the_binding_constraint() {
        let p = PlatformSpec::cpu_ryzen_3990x();
        // Compute-bound case.
        let t = p.roofline_seconds(3.7e12, 1e6, 1.0, 1.0);
        assert!((t - 1.0).abs() < 1e-9);
        // Memory-bound case.
        let t = p.roofline_seconds(1e6, 107e9, 1.0, 1.0);
        assert!((t - 1.0).abs() < 1e-9);
    }

    #[test]
    fn efficiency_scales_times() {
        let p = PlatformSpec::gpu_rtx3090();
        assert!(p.compute_seconds(1e12, 0.5) > p.compute_seconds(1e12, 1.0));
        assert!(p.memory_seconds(1e9, 0.5) > p.memory_seconds(1e9, 1.0));
    }

    #[test]
    fn interconnect_time_is_zero_without_a_link() {
        assert_eq!(
            PlatformSpec::cpu_ryzen_3990x().interconnect_seconds(1e9),
            0.0
        );
        assert!(PlatformSpec::gpu_rtx3090().interconnect_seconds(31.5e9) > 0.99);
    }
}
