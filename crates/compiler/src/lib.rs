//! The Dynasparse compiler (Section IV of the paper).
//!
//! The compiler runs on the host processor and performs the preprocessing
//! step of the workflow (Fig. 3 / Fig. 4):
//!
//! 1. **Parsing the input** — the user-defined GNN model and the graph meta
//!    data are lowered into a computation graph whose nodes are kernel IRs
//!    (Table II) and whose edges are data dependencies ([`ir`]).
//! 2. **Data partitioning** — each kernel's operands are tiled into blocks /
//!    fibers / subfibers (Fig. 5) with the partition sizes `(N1, N2)` chosen
//!    by the load-balance heuristic of Algorithm 9 ([`partitioning`]).
//! 3. **Execution-scheme generation** — each kernel is decomposed into
//!    independent computation tasks (Algorithms 2, 3 and 4), one per output
//!    partition ([`schemes`]).
//! 4. **Compile-time sparsity preprocessing** — the densities of the
//!    adjacency matrix, the weight matrices and the input feature matrix are
//!    profiled per partition ([`sparsity`]); the densities of intermediate
//!    feature matrices are left to the accelerator's runtime Sparsity
//!    Profiler.
//!
//! The result is an *optimized IR* ([`compile::CompiledProgram`]) that the
//! runtime system executes.  [`compile::compile`] also reports the
//! preprocessing wall-clock time, reproducing Table IX.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod compile;
pub mod config;
pub mod ir;
pub mod partitioning;
pub mod schemes;
pub mod sparsity;

pub use compile::{
    compile, compile_topology, compile_topology_with_weights, CompileReport, CompiledKernel,
    CompiledProgram,
};
pub use config::CompilerConfig;
pub use ir::{ComputationGraph, KernelIr, KernelKind};
pub use partitioning::choose_partition;
pub use schemes::{BlockRef, OperandKind, TaskDescriptor};
pub use sparsity::StaticSparsity;
