//! Compiler configuration: the hardware facts the compiler needs.
//!
//! The compiler does not need the full accelerator model — only the number of
//! Computation Cores (for the load-balance constraint of Algorithm 9), the
//! per-core on-chip buffer capacity (for the memory-capacity constraint) and
//! the load-balance factor `η`.

use serde::{Deserialize, Serialize};

/// Hardware facts and tuning knobs used during compilation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompilerConfig {
    /// Number of Computation Cores in the accelerator (7 on the Alveo U250
    /// floorplan of Fig. 9).
    pub num_cores: usize,
    /// Load-balance factor `η`: each kernel must decompose into at least
    /// `η · num_cores` tasks (the paper follows GPOP and uses `η = 4`).
    pub eta: usize,
    /// On-chip buffer capacity available to one Computation Core, in bytes.
    /// The Alveo U250 provides ≈45 MB of BRAM+URAM; divided across 7 cores
    /// and the FPGA shell this leaves ≈5 MB per core.
    pub per_core_buffer_bytes: usize,
    /// Hard upper bound on any partition edge (guards against degenerate
    /// cases where a single kernel is so small that the memory bound alone
    /// would allow an enormous tile).
    pub max_partition: usize,
    /// Hard lower bound on any partition edge; a tile smaller than the
    /// systolic-array dimension `psys = 16` wastes the ALU array.
    pub min_partition: usize,
}

impl Default for CompilerConfig {
    fn default() -> Self {
        CompilerConfig {
            num_cores: 7,
            eta: 4,
            per_core_buffer_bytes: 5 * 1024 * 1024,
            max_partition: 2048,
            min_partition: 16,
        }
    }
}

impl CompilerConfig {
    /// Minimum number of tasks each kernel must decompose into.
    pub fn min_tasks(&self) -> usize {
        self.eta * self.num_cores
    }

    /// `g(So)` of Algorithm 9: the largest partition edge whose worst-case
    /// (dense) tile fits the per-core buffer budget.  Four data buffers are
    /// double-buffered, so a tile of edge `N` needs `8 · N² · 4` bytes in the
    /// worst case; the result is rounded down to a power of two.
    pub fn max_partition_from_memory(&self) -> usize {
        let budget = self.per_core_buffer_bytes as f64 / 8.0;
        let n = (budget / 4.0).sqrt().floor() as usize;
        let n = n.min(self.max_partition).max(self.min_partition);
        // Round down to a power of two for clean tiling.
        let mut p = self.min_partition;
        while p * 2 <= n {
            p *= 2;
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_constants() {
        let c = CompilerConfig::default();
        assert_eq!(c.num_cores, 7);
        assert_eq!(c.eta, 4);
        assert_eq!(c.min_tasks(), 28);
        assert_eq!(c.min_partition, 16);
    }

    #[test]
    fn memory_bound_is_a_power_of_two_within_limits() {
        let c = CompilerConfig::default();
        let n = c.max_partition_from_memory();
        assert!(n.is_power_of_two());
        assert!(n >= c.min_partition);
        assert!(n <= c.max_partition);
        // With 5 MB per core the bound lands at 256.
        assert_eq!(n, 256);
    }

    #[test]
    fn tiny_buffers_clamp_to_min_partition() {
        let c = CompilerConfig {
            per_core_buffer_bytes: 1024,
            ..CompilerConfig::default()
        };
        assert_eq!(c.max_partition_from_memory(), c.min_partition);
    }

    #[test]
    fn huge_buffers_clamp_to_max_partition() {
        let c = CompilerConfig {
            per_core_buffer_bytes: 1 << 34,
            ..CompilerConfig::default()
        };
        assert_eq!(c.max_partition_from_memory(), 2048);
    }
}
