//! Partition-size selection (Algorithm 9 of the paper).
//!
//! The compiler chooses a single `(N1, N2)` pair for the whole model such
//! that
//!
//! * every kernel decomposes into at least `η · N_CC` tasks (keeps all
//!   Computation Cores busy during dynamic task scheduling),
//! * a worst-case (dense) partition fits in the per-core on-chip buffers,
//! * the partitions are as large as possible within those bounds (data
//!   locality).
//!
//! Step 1 fixes `N2` from the Update kernels (`T_u = |V|·f_out / N2²`);
//! step 2 fixes `N1` from the Aggregate kernels
//! (`T_a = |V|·f_out / (N1·N2)`), given the already-chosen `N2`.

use crate::config::CompilerConfig;
use crate::ir::{ComputationGraph, KernelKind};
use dynasparse_matrix::PartitionSpec;

fn round_down_pow2(n: usize, min: usize) -> usize {
    let mut p = min;
    while p * 2 <= n {
        p *= 2;
    }
    p
}

/// Chooses the partition sizes `(N1, N2)` for a computation graph
/// (Algorithm 9).  Returns a [`PartitionSpec`] with `N1 ≥ N2`.
pub fn choose_partition(graph: &ComputationGraph, config: &CompilerConfig) -> PartitionSpec {
    let n_max = config.max_partition_from_memory();
    let min_tasks = config.min_tasks().max(1);
    let n_min = config.min_partition;

    // ---- Step 1: determine N2 from the Update kernels. ----
    let mut n2 = n_max;
    for k in graph
        .kernels
        .iter()
        .filter(|k| k.kind == KernelKind::Update)
    {
        // Largest N' with Q / N'^2 >= min_tasks  =>  N' = sqrt(Q / min_tasks).
        let q = k.workload() as f64;
        let n_prime = (q / min_tasks as f64).sqrt().floor() as usize;
        let n_it = round_down_pow2(n_prime.clamp(n_min, n_max), n_min);
        n2 = n2.min(n_it);
    }
    n2 = n2.clamp(n_min, n_max);

    // ---- Step 2: determine N1 from the Aggregate kernels. ----
    let mut n1 = n_max;
    for k in graph
        .kernels
        .iter()
        .filter(|k| k.kind == KernelKind::Aggregate)
    {
        // Largest N' with Q / (N' · N2) >= min_tasks  =>  N' = Q / (min_tasks · N2).
        let q = k.workload() as f64;
        let n_prime = (q / (min_tasks as f64 * n2 as f64)).floor() as usize;
        let n_it = round_down_pow2(n_prime.clamp(n_min, n_max), n_min);
        n1 = n1.min(n_it);
    }
    n1 = n1.clamp(n_min, n_max).max(n2);

    PartitionSpec::new(n1, n2).expect("N1 >= N2 > 0 by construction")
}

/// Reports, for every kernel, how many tasks it decomposes into under `spec`
/// — used by tests and by the load-balance diagnostics of the harnesses.
pub fn tasks_per_kernel(graph: &ComputationGraph, spec: &PartitionSpec) -> Vec<usize> {
    graph
        .kernels
        .iter()
        .map(|k| match k.kind {
            KernelKind::Aggregate => spec.aggregate_tasks(k.num_vertices, k.output_dim),
            KernelKind::Update => spec.update_tasks(k.num_vertices, k.output_dim),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynasparse_model::{GnnModel, GnnModelKind};

    fn graph_for(
        kind: GnnModelKind,
        v: usize,
        e: usize,
        f: usize,
        h: usize,
        c: usize,
    ) -> ComputationGraph {
        let m = GnnModel::standard(kind, f, h, c, 0);
        ComputationGraph::from_model(&m, v, e)
    }

    #[test]
    fn partition_respects_memory_and_ordering_bounds() {
        let cfg = CompilerConfig::default();
        let g = graph_for(GnnModelKind::Gcn, 19_717, 44_338, 500, 16, 3);
        let spec = choose_partition(&g, &cfg);
        assert!(spec.n1 >= spec.n2);
        assert!(spec.n1 <= cfg.max_partition_from_memory());
        assert!(spec.n2 >= cfg.min_partition);
        assert!(spec.n1.is_power_of_two());
        assert!(spec.n2.is_power_of_two());
    }

    #[test]
    fn every_kernel_gets_enough_tasks_on_large_graphs() {
        let cfg = CompilerConfig::default();
        for kind in GnnModelKind::all() {
            let g = graph_for(kind, 89_250, 899_756, 500, 128, 7);
            let spec = choose_partition(&g, &cfg);
            for (k, &tasks) in tasks_per_kernel(&g, &spec).iter().enumerate() {
                assert!(
                    tasks >= cfg.min_tasks(),
                    "{}: kernel {k} has only {tasks} tasks with N1={} N2={}",
                    kind.name(),
                    spec.n1,
                    spec.n2
                );
            }
        }
    }

    #[test]
    fn tiny_graphs_clamp_to_minimum_partition() {
        let cfg = CompilerConfig::default();
        // A graph so small that even the minimum tile cannot give 28 tasks.
        let g = graph_for(GnnModelKind::Gcn, 64, 128, 32, 8, 4);
        let spec = choose_partition(&g, &cfg);
        assert_eq!(spec.n2, cfg.min_partition);
        assert!(spec.n1 >= spec.n2);
    }

    #[test]
    fn single_vertex_graph_clamps_without_panicking() {
        // |V| = 1 drives every workload to its floor: Algorithm 9's
        // task-count targets are unreachable, so both edges clamp to the
        // minimum tile and every kernel still decomposes into >= 1 task.
        let cfg = CompilerConfig::default();
        let g = graph_for(GnnModelKind::Gcn, 1, 1, 8, 8, 2);
        let spec = choose_partition(&g, &cfg);
        assert_eq!(spec.n2, cfg.min_partition);
        assert_eq!(spec.n1, cfg.min_partition);
        for &tasks in &tasks_per_kernel(&g, &spec) {
            assert!(tasks >= 1);
        }
    }

    #[test]
    fn min_partition_exceeding_the_memory_bound_degrades_to_one_tile_size() {
        // A minimum tile larger than both the memory bound and the hard
        // maximum: the memory bound saturates up to the minimum, so the
        // algorithm degrades to a single (min, min) tile size instead of
        // panicking on an inverted clamp range.
        let cfg = CompilerConfig {
            min_partition: 4096,
            ..CompilerConfig::default()
        };
        assert!(cfg.min_partition > cfg.max_partition);
        assert_eq!(cfg.max_partition_from_memory(), 4096);
        let g = graph_for(GnnModelKind::Gcn, 19_717, 44_338, 500, 16, 3);
        let spec = choose_partition(&g, &cfg);
        assert_eq!((spec.n1, spec.n2), (4096, 4096));
    }

    #[test]
    fn empty_computation_graph_yields_the_memory_bound_partition() {
        // No kernels constrain the tile, so both edges settle at the memory
        // bound (the largest locality-preserving tile) — and nothing panics
        // on the empty iterators.
        let cfg = CompilerConfig::default();
        let g = ComputationGraph {
            kernels: Vec::new(),
            num_layers: 0,
        };
        let spec = choose_partition(&g, &cfg);
        let n_max = cfg.max_partition_from_memory();
        assert_eq!((spec.n1, spec.n2), (n_max, n_max));
        assert!(tasks_per_kernel(&g, &spec).is_empty());
    }

    #[test]
    fn larger_graphs_get_larger_partitions() {
        let cfg = CompilerConfig::default();
        let small = choose_partition(
            &graph_for(GnnModelKind::Gcn, 2_708, 5_429, 1433, 16, 7),
            &cfg,
        );
        let large = choose_partition(
            &graph_for(GnnModelKind::Gcn, 232_965, 11_000_000, 602, 128, 41),
            &cfg,
        );
        assert!(large.n1 >= small.n1);
        assert!(large.n2 >= small.n2);
    }

    #[test]
    fn update_task_count_formula_matches_algorithm_3() {
        let cfg = CompilerConfig::default();
        let g = graph_for(GnnModelKind::Gcn, 19_717, 44_338, 500, 16, 3);
        let spec = choose_partition(&g, &cfg);
        let tasks = tasks_per_kernel(&g, &spec);
        // Kernel 0 is the first Update: |V|/N2 * f_out/N2.
        let expect = 19_717usize.div_ceil(spec.n2) * 16usize.div_ceil(spec.n2);
        assert_eq!(tasks[0], expect);
    }
}
