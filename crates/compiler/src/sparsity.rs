//! Compile-time sparsity preprocessing (workflow step 1-③ of the paper).
//!
//! While the compiler performs data partitioning it profiles, with simple
//! counters, the per-partition densities of everything that is known before
//! runtime: the graph adjacency matrix `A`, the weight matrices `W_l`, and
//! the input feature matrix `H⁰`.  The densities of the intermediate feature
//! matrices `{H¹, …, Hᴸ}` are *not* known here — they are profiled by the
//! accelerator's Sparsity Profiler at runtime.

use dynasparse_graph::{normalized_adjacency, AggregatorKind, FeatureMatrix, Graph, GraphDataset};
use dynasparse_matrix::{DensityProfile, PartitionSpec};
use dynasparse_model::GnnModel;
use serde::{Deserialize, Serialize};

/// Densities of all compile-time-known operands, per data partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StaticSparsity {
    /// Per-block density of the normalized adjacency matrix (`A + I` pattern,
    /// tiled `N1 × N1`).  The non-zero *pattern* is identical for every
    /// aggregator normalization, so one profile serves all Aggregate kernels.
    pub adjacency: DensityProfile,
    /// Per-block density of each weight matrix (tiled `N2 × N2`), indexed
    /// like [`GnnModel::weights`].
    pub weights: Vec<DensityProfile>,
    /// Per-fiber density of the input feature matrix `H⁰` (`N1 × N2` tiles,
    /// the granularity of Aggregate kernels).
    pub input_features_fiber: DensityProfile,
    /// Per-subfiber density of `H⁰` (`N2 × N2` tiles, the granularity of
    /// Update kernels).
    pub input_features_subfiber: DensityProfile,
}

impl StaticSparsity {
    /// Profiles every compile-time-known operand of `(model, dataset)` under
    /// the chosen partition spec.
    pub fn profile(model: &GnnModel, dataset: &GraphDataset, spec: &PartitionSpec) -> Self {
        let adjacency = Self::profile_adjacency(&dataset.graph, spec);
        let weights = Self::profile_weights(model, spec);
        let (input_features_fiber, input_features_subfiber) =
            Self::profile_features(&dataset.features, spec);
        StaticSparsity {
            adjacency,
            weights,
            input_features_fiber,
            input_features_subfiber,
        }
    }

    /// Profiles the per-block density of `graph`'s adjacency matrix under
    /// `spec` — the topology-dependent half of the static profile.
    ///
    /// The Aggregate kernels multiply the *normalized* adjacency (which
    /// includes self-loops); its pattern is what matters for density, and
    /// the pattern is identical for every aggregator normalization, so one
    /// profile serves all Aggregate kernels.
    pub fn profile_adjacency(graph: &Graph, spec: &PartitionSpec) -> DensityProfile {
        let normalized = normalized_adjacency(graph.adjacency(), AggregatorKind::Sum);
        DensityProfile::of_csr(&normalized, &spec.adjacency_grid(graph.num_vertices()))
    }

    /// Profiles the per-block density of every weight matrix under `spec` —
    /// the topology-*independent* half of the static profile.
    ///
    /// The weight grid depends on the partition spec only through `N2`, so a
    /// model template can compute this once per distinct `N2` and reuse it
    /// across every subgraph instantiation that lands on the same partition.
    pub fn profile_weights(model: &GnnModel, spec: &PartitionSpec) -> Vec<DensityProfile> {
        model
            .weights
            .iter()
            .map(|w| DensityProfile::of_dense(w, &spec.weight_grid(w.rows(), w.cols())))
            .collect()
    }

    /// Profiles the input feature matrix at fiber (`N1 × N2`) and subfiber
    /// (`N2 × N2`) granularity under `spec`.
    pub fn profile_features(
        features: &FeatureMatrix,
        spec: &PartitionSpec,
    ) -> (DensityProfile, DensityProfile) {
        let num_vertices = features.shape().0;
        let feature_dim = features.dim();
        let fiber = features.density_profile(&spec.feature_grid(num_vertices, feature_dim));
        let subfiber = features.density_profile(&spec.subfiber_grid(num_vertices, feature_dim));
        (fiber, subfiber)
    }

    /// Overall density of the adjacency matrix (with self-loops).
    pub fn adjacency_density(&self) -> f64 {
        self.adjacency.overall_density()
    }

    /// Overall density of the input feature matrix.
    pub fn input_feature_density(&self) -> f64 {
        self.input_features_fiber.overall_density()
    }

    /// Average overall density of the weight matrices.
    pub fn weight_density(&self) -> f64 {
        if self.weights.is_empty() {
            return 1.0;
        }
        self.weights
            .iter()
            .map(|w| w.overall_density())
            .sum::<f64>()
            / self.weights.len() as f64
    }

    /// Total number of per-partition density records the soft processor must
    /// hold (sizing input for its D-cache discussion in Section VII).
    pub fn num_partition_records(&self) -> usize {
        self.adjacency.block_count()
            + self.weights.iter().map(|w| w.block_count()).sum::<usize>()
            + self.input_features_fiber.block_count()
            + self.input_features_subfiber.block_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynasparse_graph::Dataset;
    use dynasparse_model::{prune_magnitude, GnnModel};

    fn small_setup() -> (GnnModel, GraphDataset, PartitionSpec) {
        let ds = Dataset::Cora.spec().generate_scaled(3, 0.2);
        let model = GnnModel::gcn(ds.features.dim(), 16, 7, 1);
        let spec = PartitionSpec::new(128, 32).unwrap();
        (model, ds, spec)
    }

    #[test]
    fn adjacency_profile_includes_self_loops() {
        let (model, ds, spec) = small_setup();
        let s = StaticSparsity::profile(&model, &ds, &spec);
        // nnz of A + I = |E'| + |V| (no duplicate diagonal in the generator's
        // collapsed edges apart from rare self-edges).
        let v = ds.graph.num_vertices();
        assert!(s.adjacency.total_nnz() >= ds.graph.num_edges());
        assert!(s.adjacency.total_nnz() <= ds.graph.num_edges() + v);
        assert!(s.adjacency_density() > ds.graph.adjacency_density());
    }

    #[test]
    fn unpruned_weights_profile_as_dense() {
        let (model, ds, spec) = small_setup();
        let s = StaticSparsity::profile(&model, &ds, &spec);
        assert_eq!(s.weights.len(), 2);
        assert!(s.weight_density() > 0.99);
    }

    #[test]
    fn pruned_weights_show_reduced_density() {
        let (mut model, ds, spec) = small_setup();
        model.weights = model
            .weights
            .iter()
            .map(|w| prune_magnitude(w, 0.9))
            .collect();
        let s = StaticSparsity::profile(&model, &ds, &spec);
        assert!((s.weight_density() - 0.1).abs() < 0.02);
    }

    #[test]
    fn feature_profiles_agree_on_total_nnz_across_granularities() {
        let (model, ds, spec) = small_setup();
        let s = StaticSparsity::profile(&model, &ds, &spec);
        assert_eq!(
            s.input_features_fiber.total_nnz(),
            s.input_features_subfiber.total_nnz()
        );
        assert!((s.input_feature_density() - ds.feature_density()).abs() < 1e-9);
        assert!(s.num_partition_records() > 0);
    }
}
