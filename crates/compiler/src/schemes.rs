//! Execution-scheme generation (Algorithms 2, 3 and 4 of the paper).
//!
//! A kernel's execution scheme decomposes it into independent **tasks**, one
//! per output data partition.  Each task accumulates `K` block-level matrix
//! products into its output partition (Algorithm 4); the primitive used for
//! each block product is *not* decided here — that is the runtime system's
//! dynamic kernel-to-primitive mapping.
//!
//! * **Aggregate** (Algorithm 2): output fiber `H_out[i,k]` accumulates
//!   `A[i,j] × H_in[j,k]` over all `j`; `A` blocks are `N1 × N1`, feature
//!   fibers are `N1 × N2`.
//! * **Update** (Algorithm 3): output subfiber `H_out[i,k]` accumulates
//!   `H_in[i,j] × W[j,k]` over all `j`; feature subfibers and weight blocks
//!   are `N2 × N2`.

use crate::ir::{KernelIr, KernelKind};
use dynasparse_matrix::PartitionSpec;
use serde::{Deserialize, Serialize};

/// Which matrix a block reference points into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OperandKind {
    /// The (normalized) graph adjacency matrix, tiled `N1 × N1`.
    Adjacency,
    /// The kernel's input feature matrix.  Aggregate kernels read it at fiber
    /// granularity (`N1 × N2`); Update kernels at subfiber granularity
    /// (`N2 × N2`).
    Features,
    /// Weight matrix with the given model-level index, tiled `N2 × N2`.
    Weight(usize),
}

/// A reference to one data partition of one operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BlockRef {
    /// Which operand the block belongs to.
    pub operand: OperandKind,
    /// Row of the block in that operand's grid.
    pub grid_row: usize,
    /// Column of the block in that operand's grid.
    pub grid_col: usize,
}

/// One block-level product `Z += X × Y` inside a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BlockPair {
    /// Left operand block.
    pub x: BlockRef,
    /// Right operand block.
    pub y: BlockRef,
}

/// One computation task (Algorithm 4): the accumulation of an output
/// partition from `K` block products.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskDescriptor {
    /// Row of the output partition in the output grid.
    pub output_row: usize,
    /// Column of the output partition in the output grid.
    pub output_col: usize,
    /// The `K` block products accumulated by this task, in order.
    pub pairs: Vec<BlockPair>,
}

impl TaskDescriptor {
    /// Number of block products (`K`).
    pub fn num_pairs(&self) -> usize {
        self.pairs.len()
    }
}

/// The `(m, n, d)` shape of every block product of a kernel under `spec`
/// (`X` is `m × n`, `Y` is `n × d`).
pub fn pair_shape(kind: KernelKind, spec: &PartitionSpec) -> (usize, usize, usize) {
    match kind {
        KernelKind::Aggregate => (spec.n1, spec.n1, spec.n2),
        KernelKind::Update => (spec.n2, spec.n2, spec.n2),
    }
}

/// Generates the execution scheme (all task descriptors) of one kernel.
pub fn generate_tasks(kernel: &KernelIr, spec: &PartitionSpec) -> Vec<TaskDescriptor> {
    match kernel.kind {
        KernelKind::Aggregate => generate_aggregate_tasks(kernel, spec),
        KernelKind::Update => generate_update_tasks(kernel, spec),
    }
}

/// Algorithm 2: tasks of an Aggregate kernel.
fn generate_aggregate_tasks(kernel: &KernelIr, spec: &PartitionSpec) -> Vec<TaskDescriptor> {
    let v_blocks = kernel.num_vertices.div_ceil(spec.n1);
    let f_blocks = kernel.output_dim.div_ceil(spec.n2);
    let mut tasks = Vec::with_capacity(v_blocks * f_blocks);
    for i in 0..v_blocks {
        for k in 0..f_blocks {
            let pairs = (0..v_blocks)
                .map(|j| BlockPair {
                    x: BlockRef {
                        operand: OperandKind::Adjacency,
                        grid_row: i,
                        grid_col: j,
                    },
                    y: BlockRef {
                        operand: OperandKind::Features,
                        grid_row: j,
                        grid_col: k,
                    },
                })
                .collect();
            tasks.push(TaskDescriptor {
                output_row: i,
                output_col: k,
                pairs,
            });
        }
    }
    tasks
}

/// Algorithm 3: tasks of an Update kernel.
fn generate_update_tasks(kernel: &KernelIr, spec: &PartitionSpec) -> Vec<TaskDescriptor> {
    let weight = kernel
        .weight
        .expect("Update kernels always reference a weight matrix");
    let v_blocks = kernel.num_vertices.div_ceil(spec.n2);
    let out_blocks = kernel.output_dim.div_ceil(spec.n2);
    let in_blocks = kernel.input_dim.div_ceil(spec.n2);
    let mut tasks = Vec::with_capacity(v_blocks * out_blocks);
    for i in 0..v_blocks {
        for k in 0..out_blocks {
            let pairs = (0..in_blocks)
                .map(|j| BlockPair {
                    x: BlockRef {
                        operand: OperandKind::Features,
                        grid_row: i,
                        grid_col: j,
                    },
                    y: BlockRef {
                        operand: OperandKind::Weight(weight),
                        grid_row: j,
                        grid_col: k,
                    },
                })
                .collect();
            tasks.push(TaskDescriptor {
                output_row: i,
                output_col: k,
                pairs,
            });
        }
    }
    tasks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ComputationGraph;
    use dynasparse_model::GnnModel;

    fn gcn_graph() -> ComputationGraph {
        let m = GnnModel::gcn(500, 16, 3, 0);
        ComputationGraph::from_model(&m, 1000, 4000)
    }

    #[test]
    fn aggregate_task_count_matches_formula() {
        let g = gcn_graph();
        let spec = PartitionSpec::new(256, 16).unwrap();
        let agg = &g.kernels[1];
        let tasks = generate_tasks(agg, &spec);
        assert_eq!(tasks.len(), spec.aggregate_tasks(1000, 16));
        // Every task accumulates |V|/N1 = 4 block products.
        assert!(tasks.iter().all(|t| t.num_pairs() == 4));
    }

    #[test]
    fn update_task_count_matches_formula() {
        let g = gcn_graph();
        let spec = PartitionSpec::new(256, 16).unwrap();
        let upd = &g.kernels[0];
        let tasks = generate_tasks(upd, &spec);
        assert_eq!(tasks.len(), spec.update_tasks(1000, 16));
        // K = f_in / N2 = ceil(500/16) = 32.
        assert!(tasks.iter().all(|t| t.num_pairs() == 32));
    }

    #[test]
    fn aggregate_pairs_walk_the_adjacency_row() {
        let g = gcn_graph();
        let spec = PartitionSpec::new(512, 16).unwrap();
        let agg = &g.kernels[1];
        let tasks = generate_tasks(agg, &spec);
        // With N1 = 512 over 1000 vertices and f_out = 16 = N2, the grid is
        // 2 row-blocks by 1 column-block, so tasks[1] is output block (1, 0).
        let t = &tasks[1];
        assert_eq!((t.output_row, t.output_col), (1, 0));
        for (j, p) in t.pairs.iter().enumerate() {
            assert_eq!(p.x.operand, OperandKind::Adjacency);
            assert_eq!((p.x.grid_row, p.x.grid_col), (1, j));
            assert_eq!(p.y.operand, OperandKind::Features);
            assert_eq!((p.y.grid_row, p.y.grid_col), (j, 0));
        }
    }

    #[test]
    fn update_pairs_reference_the_right_weight() {
        let g = gcn_graph();
        let spec = PartitionSpec::new(128, 32).unwrap();
        let upd2 = &g.kernels[2]; // second layer update, weight index 1
        let tasks = generate_tasks(upd2, &spec);
        for t in &tasks {
            for p in &t.pairs {
                assert_eq!(p.x.operand, OperandKind::Features);
                assert_eq!(p.y.operand, OperandKind::Weight(1));
                assert_eq!(p.x.grid_col, p.y.grid_row);
            }
        }
    }

    #[test]
    fn pair_shapes_follow_fig_5() {
        let spec = PartitionSpec::new(512, 128).unwrap();
        assert_eq!(pair_shape(KernelKind::Aggregate, &spec), (512, 512, 128));
        assert_eq!(pair_shape(KernelKind::Update, &spec), (128, 128, 128));
    }

    #[test]
    fn tasks_cover_all_output_partitions_exactly_once() {
        let g = gcn_graph();
        let spec = PartitionSpec::new(256, 16).unwrap();
        for kernel in &g.kernels {
            let tasks = generate_tasks(kernel, &spec);
            let mut seen = std::collections::HashSet::new();
            for t in &tasks {
                assert!(seen.insert((t.output_row, t.output_col)));
            }
        }
    }
}
