//! The end-to-end compilation pass: model + graph → optimized IR.
//!
//! `compile()` performs the two compilation steps of Section IV-B — parsing
//! the input into the computation graph, then data partitioning and
//! execution-scheme generation — plus the compile-time sparsity
//! preprocessing, and reports how long each step took (the preprocessing
//! overhead of Table IX).

use crate::config::CompilerConfig;
use crate::ir::{ComputationGraph, KernelIr};
use crate::partitioning::choose_partition;
use crate::schemes::{generate_tasks, TaskDescriptor};
use crate::sparsity::StaticSparsity;
use dynasparse_graph::{FeatureMatrix, Graph, GraphDataset};
use dynasparse_matrix::{DensityProfile, PartitionSpec};
use dynasparse_model::GnnModel;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// One kernel of the optimized IR: its Table II meta data plus its execution
/// scheme.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledKernel {
    /// Kernel meta data.
    pub ir: KernelIr,
    /// Execution scheme: the independent tasks of the kernel.
    pub tasks: Vec<TaskDescriptor>,
}

impl CompiledKernel {
    /// Total number of block products across all tasks of the kernel.
    pub fn total_pairs(&self) -> usize {
        self.tasks.iter().map(|t| t.num_pairs()).sum()
    }
}

/// The optimized IR handed to the runtime system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledProgram {
    /// Kernels in execution order with their execution schemes.
    pub kernels: Vec<CompiledKernel>,
    /// The partition sizes chosen by Algorithm 9.
    pub partition: PartitionSpec,
    /// Compile-time sparsity information.
    pub static_sparsity: StaticSparsity,
    /// Number of GNN layers in the source model.
    pub num_layers: usize,
    /// Number of vertices of the compiled graph instance.
    pub num_vertices: usize,
    /// Number of edges of the compiled graph instance.
    pub num_edges: usize,
    /// Bytes that must be moved from host memory to FPGA external memory
    /// before execution (processed graph + features + weights + IR), used by
    /// the end-to-end latency accounting of Section VIII-D.
    pub data_movement_bytes: usize,
    /// The input-independent portion of [`data_movement_bytes`]: adjacency,
    /// weights and IR.  These cross PCIe once per compiled plan; only the
    /// per-request feature matrix moves again on every inference, which is
    /// what lets a serving session amortize the transfer.
    ///
    /// [`data_movement_bytes`]: CompiledProgram::data_movement_bytes
    pub static_data_bytes: usize,
}

impl CompiledProgram {
    /// Total number of tasks across all kernels.
    pub fn total_tasks(&self) -> usize {
        self.kernels.iter().map(|k| k.tasks.len()).sum()
    }

    /// Total number of block products across all kernels.
    pub fn total_pairs(&self) -> usize {
        self.kernels.iter().map(|k| k.total_pairs()).sum()
    }

    /// Kernels of GNN layer `layer_id` (1-based).
    pub fn layer_kernels(&self, layer_id: usize) -> Vec<&CompiledKernel> {
        self.kernels
            .iter()
            .filter(|k| k.ir.layer_id == layer_id)
            .collect()
    }
}

/// Timing breakdown of one compilation (the quantity of Table IX).
#[derive(Debug, Clone, Serialize)]
pub struct CompileReport {
    /// The optimized IR.
    pub program: CompiledProgram,
    /// Time spent building the computation graph (IR generation).
    pub ir_time: Duration,
    /// Time spent choosing partition sizes and generating execution schemes.
    pub partition_time: Duration,
    /// Time spent profiling compile-time data sparsity.
    pub profiling_time: Duration,
    /// Total preprocessing time.
    pub total_time: Duration,
}

impl CompileReport {
    /// Total preprocessing time in milliseconds (the unit of Table IX).
    pub fn total_ms(&self) -> f64 {
        self.total_time.as_secs_f64() * 1e3
    }
}

/// Compiles a model against a dataset: builds the computation graph, chooses
/// partition sizes, generates execution schemes and profiles static
/// sparsity.
pub fn compile(model: &GnnModel, dataset: &GraphDataset, config: &CompilerConfig) -> CompileReport {
    compile_topology(model, &dataset.graph, &dataset.features, config)
}

/// Compiles a model against a bare `(graph, features)` topology.
///
/// Identical to [`compile`] but without requiring a [`GraphDataset`]
/// wrapper — the per-request entry point for subgraph serving, where the
/// topology is a freshly sampled ego-net rather than a named dataset.
pub fn compile_topology(
    model: &GnnModel,
    graph: &Graph,
    features: &FeatureMatrix,
    config: &CompilerConfig,
) -> CompileReport {
    compile_topology_with_weights(model, graph, features, config, |spec| {
        StaticSparsity::profile_weights(model, spec)
    })
}

/// Compiles a model against a topology, sourcing the weight density
/// profiles from `weights_for` instead of re-profiling them.
///
/// The weight grid depends on the partition spec only through `N2`, so a
/// resident [`ModelTemplate`](https://docs.rs/dynasparse) can memoize the
/// profiles per distinct `N2` and hand back cached copies here — the
/// callback runs *after* Algorithm 9 has chosen the partition (the spec is
/// not known earlier), and its duration is still accounted under
/// `profiling_time` so cache hits show up as the measured win.
///
/// The callback must return exactly what
/// [`StaticSparsity::profile_weights`] would for the same `(model, spec)`;
/// everything downstream (strategy pricing, density traces) reads these
/// values bit-for-bit.
pub fn compile_topology_with_weights(
    model: &GnnModel,
    graph: &Graph,
    features: &FeatureMatrix,
    config: &CompilerConfig,
    weights_for: impl FnOnce(&PartitionSpec) -> Vec<DensityProfile>,
) -> CompileReport {
    let start = Instant::now();

    // Step 1: parse the input into the computation graph.
    let t0 = Instant::now();
    let comp_graph = ComputationGraph::from_model(model, graph.num_vertices(), graph.num_edges());
    let ir_time = t0.elapsed();

    // Step 2: data partitioning + execution-scheme generation.
    let t1 = Instant::now();
    let partition = choose_partition(&comp_graph, config);
    let kernels: Vec<CompiledKernel> = comp_graph
        .kernels
        .iter()
        .map(|ir| CompiledKernel {
            ir: ir.clone(),
            tasks: generate_tasks(ir, &partition),
        })
        .collect();
    let partition_time = t1.elapsed();

    // Step 3: compile-time sparsity preprocessing.
    let t2 = Instant::now();
    let adjacency = StaticSparsity::profile_adjacency(graph, &partition);
    let weights = weights_for(&partition);
    let (input_features_fiber, input_features_subfiber) =
        StaticSparsity::profile_features(features, &partition);
    let static_sparsity = StaticSparsity {
        adjacency,
        weights,
        input_features_fiber,
        input_features_subfiber,
    };
    let profiling_time = t2.elapsed();

    // Data that must cross PCIe before execution: adjacency (CSR), input
    // features (their stored representation), all weights (dense) and the IR
    // (negligible but counted as one record per task).
    let weights_bytes: usize = model.weights.iter().map(|w| w.size_bytes()).sum();
    let ir_bytes: usize = kernels.iter().map(|k| 64 + k.tasks.len() * 16).sum();
    let static_data_bytes = graph.adjacency().size_bytes() + weights_bytes + ir_bytes;
    let data_movement_bytes = static_data_bytes + features.size_bytes();

    let program = CompiledProgram {
        kernels,
        partition,
        static_sparsity,
        num_layers: comp_graph.num_layers,
        num_vertices: graph.num_vertices(),
        num_edges: graph.num_edges(),
        data_movement_bytes,
        static_data_bytes,
    };
    CompileReport {
        program,
        ir_time,
        partition_time,
        profiling_time,
        total_time: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynasparse_graph::Dataset;
    use dynasparse_model::{GnnModel, GnnModelKind};

    fn compile_small(kind: GnnModelKind) -> CompileReport {
        let ds = Dataset::Cora.spec().generate_scaled(5, 0.25);
        let model = GnnModel::standard(kind, ds.features.dim(), 16, ds.spec.num_classes, 2);
        compile(&model, &ds, &CompilerConfig::default())
    }

    #[test]
    fn compiled_program_covers_every_kernel() {
        for kind in GnnModelKind::all() {
            let report = compile_small(kind);
            let model_kernels = match kind {
                GnnModelKind::Gcn => 4,
                GnnModelKind::GraphSage => 6,
                GnnModelKind::Gin => 6,
                GnnModelKind::Sgc => 3,
            };
            assert_eq!(
                report.program.kernels.len(),
                model_kernels,
                "{}",
                kind.name()
            );
            assert!(report.program.total_tasks() > 0);
            assert!(report.program.total_pairs() >= report.program.total_tasks());
        }
    }

    #[test]
    fn task_counts_match_partition_formulas() {
        let report = compile_small(GnnModelKind::Gcn);
        let p = &report.program;
        for k in &p.kernels {
            let expect = match k.ir.kind {
                crate::ir::KernelKind::Aggregate => p
                    .partition
                    .aggregate_tasks(k.ir.num_vertices, k.ir.output_dim),
                crate::ir::KernelKind::Update => {
                    p.partition.update_tasks(k.ir.num_vertices, k.ir.output_dim)
                }
            };
            assert_eq!(k.tasks.len(), expect);
        }
    }

    #[test]
    fn timing_breakdown_sums_to_total() {
        let report = compile_small(GnnModelKind::Gcn);
        let parts = report.ir_time + report.partition_time + report.profiling_time;
        assert!(parts <= report.total_time + Duration::from_millis(1));
        assert!(report.total_ms() > 0.0);
    }

    #[test]
    fn data_movement_bytes_accounts_for_all_inputs() {
        let report = compile_small(GnnModelKind::Gcn);
        let p = &report.program;
        assert!(p.data_movement_bytes > 0);
        // It must at least include the adjacency matrix payload.
        let ds = Dataset::Cora.spec().generate_scaled(5, 0.25);
        assert!(p.data_movement_bytes > ds.graph.adjacency().size_bytes());
        // The static portion excludes exactly the per-request feature bytes.
        assert!(p.static_data_bytes >= ds.graph.adjacency().size_bytes());
        assert_eq!(
            p.data_movement_bytes - p.static_data_bytes,
            ds.features.size_bytes()
        );
    }

    #[test]
    fn layer_kernels_partition_the_kernel_list() {
        let report = compile_small(GnnModelKind::GraphSage);
        let p = &report.program;
        let per_layer: usize = (1..=p.num_layers).map(|l| p.layer_kernels(l).len()).sum();
        assert_eq!(per_layer, p.kernels.len());
    }

    #[test]
    fn static_sparsity_reflects_the_dataset() {
        let report = compile_small(GnnModelKind::Gcn);
        let s = &report.program.static_sparsity;
        assert!(s.adjacency_density() < 0.05);
        assert!(s.input_feature_density() < 0.1);
        assert!(s.weight_density() > 0.99);
    }
}
