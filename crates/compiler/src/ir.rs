//! Kernel intermediate representation (Table II) and the computation graph.
//!
//! The compiler lowers the user-defined GNN model into a computation graph
//! with `Σ_l k_l` nodes — one per kernel — where an edge denotes a data
//! dependency between two kernels (Section IV-B, step 1).  Each node carries
//! the kernel meta data of Table II; after partitioning, the execution-scheme
//! meta data is attached to produce the optimized IR.

use dynasparse_graph::AggregatorKind;
use dynasparse_model::{Activation, GnnModel, KernelInput, KernelOp};
use serde::{Deserialize, Serialize};

/// Kernel type (the "Layer Type" row of Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelKind {
    /// Feature aggregation: `H_out = A × H_in`.
    Aggregate,
    /// Feature transformation: `H_out = H_in × W`.
    Update,
}

impl KernelKind {
    /// Table II encodes Aggregate as 0 and Update as 1.
    pub fn type_code(self) -> u8 {
        match self {
            KernelKind::Aggregate => 0,
            KernelKind::Update => 1,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            KernelKind::Aggregate => "Aggregate",
            KernelKind::Update => "Update",
        }
    }
}

/// The kernel meta data of Table II.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelIr {
    /// Global kernel index in execution order (node id in the computation
    /// graph).
    pub id: usize,
    /// Kernel type.
    pub kind: KernelKind,
    /// GNN layer this kernel belongs to (1-based, as in Table II).
    pub layer_id: usize,
    /// Kernel index within its layer.
    pub kernel_in_layer: usize,
    /// Input feature dimension `f_in`.
    pub input_dim: usize,
    /// Output feature dimension `f_out`.
    pub output_dim: usize,
    /// Number of vertices `|V|`.
    pub num_vertices: usize,
    /// Number of edges `|E|` (meaningful for Aggregate kernels).
    pub num_edges: usize,
    /// Aggregation operator (for Aggregate kernels).
    pub aggregator: Option<AggregatorKind>,
    /// Weight-matrix index (for Update kernels).
    pub weight: Option<usize>,
    /// Activation applied to the kernel output.
    pub activation: Option<Activation>,
    /// Whether the activation is enabled (Table II's separate flag).
    pub activation_enabled: bool,
    /// Whether the kernel output is accumulated into the layer output.
    pub contributes_to_output: bool,
    /// Where the kernel reads its feature operand from.
    pub input: KernelInput,
    /// IDs of kernels this kernel depends on (its feature operand producer).
    pub depends_on: Vec<usize>,
}

impl KernelIr {
    /// Dense MAC workload of the kernel (`Q[k]` of Algorithm 9): the number
    /// of output elements, `|V| · f_out`.
    pub fn workload(&self) -> usize {
        self.num_vertices * self.output_dim
    }

    /// Reduction (inner) dimension of the kernel's matrix product: `|V|` for
    /// Aggregate, `f_in` for Update.
    pub fn inner_dim(&self) -> usize {
        match self.kind {
            KernelKind::Aggregate => self.num_vertices,
            KernelKind::Update => self.input_dim,
        }
    }
}

/// The computation graph: kernel IRs in execution order plus their
/// dependencies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComputationGraph {
    /// Kernel nodes in topological (execution) order.
    pub kernels: Vec<KernelIr>,
    /// Number of layers in the source model.
    pub num_layers: usize,
}

impl ComputationGraph {
    /// Builds the computation graph from a model and the graph meta data
    /// (Section IV-B step 1 — "parsing the input").
    pub fn from_model(model: &GnnModel, num_vertices: usize, num_edges: usize) -> Self {
        let mut kernels: Vec<KernelIr> = Vec::with_capacity(model.num_kernels());
        // Global kernel ids of the kernels of the previous layer that
        // contribute to that layer's output (the producers of H^{l}).
        let mut prev_layer_outputs: Vec<usize> = Vec::new();
        let mut layer_in_dim;
        for (l, layer) in model.layers.iter().enumerate() {
            layer_in_dim = layer.in_dim;
            let base = kernels.len();
            let mut this_layer_outputs = Vec::new();
            for (ki, spec) in layer.kernels.iter().enumerate() {
                let id = kernels.len();
                let (kind, aggregator, weight, out_dim, in_dim) = match spec.op {
                    KernelOp::Aggregate { aggregator } => {
                        // Aggregation preserves the feature dimension of its
                        // input kernel.
                        let dim = match spec.input {
                            KernelInput::LayerInput => layer_in_dim,
                            KernelInput::Kernel(j) => kernels[base + j].output_dim,
                        };
                        (KernelKind::Aggregate, Some(aggregator), None, dim, dim)
                    }
                    KernelOp::Update { weight } => {
                        let w = &model.weights[weight];
                        (KernelKind::Update, None, Some(weight), w.cols(), w.rows())
                    }
                };
                let depends_on: Vec<usize> = match spec.input {
                    KernelInput::LayerInput => prev_layer_outputs.clone(),
                    KernelInput::Kernel(j) => vec![base + j],
                };
                kernels.push(KernelIr {
                    id,
                    kind,
                    layer_id: l + 1,
                    kernel_in_layer: ki,
                    input_dim: in_dim,
                    output_dim: out_dim,
                    num_vertices,
                    num_edges,
                    aggregator,
                    weight,
                    activation: spec.activation,
                    activation_enabled: spec.activation.is_some(),
                    contributes_to_output: spec.contributes_to_output,
                    input: spec.input,
                    depends_on,
                });
                if spec.contributes_to_output {
                    this_layer_outputs.push(id);
                }
            }
            prev_layer_outputs = this_layer_outputs;
        }
        ComputationGraph {
            kernels,
            num_layers: model.num_layers(),
        }
    }

    /// Number of kernel nodes.
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// True if the graph has no kernels.
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }

    /// Kernels belonging to layer `layer_id` (1-based).
    pub fn layer_kernels(&self, layer_id: usize) -> Vec<&KernelIr> {
        self.kernels
            .iter()
            .filter(|k| k.layer_id == layer_id)
            .collect()
    }

    /// Checks that dependencies always point to earlier kernels.
    pub fn is_topologically_ordered(&self) -> bool {
        self.kernels
            .iter()
            .all(|k| k.depends_on.iter().all(|&d| d < k.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynasparse_model::{GnnModel, GnnModelKind};

    #[test]
    fn gcn_graph_has_four_kernels_with_correct_dims() {
        let m = GnnModel::gcn(128, 16, 7, 0);
        let g = ComputationGraph::from_model(&m, 1000, 5000);
        assert_eq!(g.len(), 4);
        assert!(g.is_topologically_ordered());
        // Layer 1: Update(128 -> 16), Aggregate(16 -> 16).
        assert_eq!(g.kernels[0].kind, KernelKind::Update);
        assert_eq!(g.kernels[0].input_dim, 128);
        assert_eq!(g.kernels[0].output_dim, 16);
        assert_eq!(g.kernels[1].kind, KernelKind::Aggregate);
        assert_eq!(g.kernels[1].input_dim, 16);
        assert_eq!(g.kernels[1].output_dim, 16);
        // Layer 2 Update reads the layer-1 output (the aggregate, id 1).
        assert_eq!(g.kernels[2].depends_on, vec![1]);
        assert_eq!(g.kernels[3].output_dim, 7);
    }

    #[test]
    fn node_count_matches_sum_of_layer_kernels() {
        for kind in GnnModelKind::all() {
            let m = GnnModel::standard(kind, 64, 16, 5, 1);
            let g = ComputationGraph::from_model(&m, 500, 2000);
            assert_eq!(g.len(), m.num_kernels(), "{}", kind.name());
            assert!(g.is_topologically_ordered());
        }
    }

    #[test]
    fn graphsage_layer_two_depends_on_both_contributors() {
        let m = GnnModel::graphsage(32, 16, 4, 2);
        let g = ComputationGraph::from_model(&m, 100, 400);
        // Layer 2's aggregate (kernel id 3) reads the layer input, which is
        // produced by the two contributing updates of layer 1 (ids 1 and 2).
        assert_eq!(g.kernels[3].depends_on, vec![1, 2]);
        assert_eq!(g.layer_kernels(1).len(), 3);
        assert_eq!(g.layer_kernels(2).len(), 3);
    }

    #[test]
    fn workload_and_inner_dim_follow_kernel_kind() {
        let m = GnnModel::gcn(100, 16, 7, 0);
        let g = ComputationGraph::from_model(&m, 2708, 5429);
        let upd = &g.kernels[0];
        assert_eq!(upd.workload(), 2708 * 16);
        assert_eq!(upd.inner_dim(), 100);
        let agg = &g.kernels[1];
        assert_eq!(agg.workload(), 2708 * 16);
        assert_eq!(agg.inner_dim(), 2708);
    }

    #[test]
    fn aggregator_and_weight_metadata_are_recorded() {
        let m = GnnModel::gin(24, 8, 3, 4);
        let g = ComputationGraph::from_model(&m, 60, 200);
        let agg = &g.kernels[0];
        assert_eq!(agg.aggregator, Some(AggregatorKind::Sum));
        assert!(agg.weight.is_none());
        let upd = &g.kernels[1];
        assert_eq!(upd.weight, Some(0));
        assert!(upd.aggregator.is_none());
        assert!(upd.activation_enabled);
    }

    #[test]
    fn type_codes_and_labels() {
        assert_eq!(KernelKind::Aggregate.type_code(), 0);
        assert_eq!(KernelKind::Update.type_code(), 1);
        assert_eq!(KernelKind::Aggregate.label(), "Aggregate");
        assert_eq!(KernelKind::Update.label(), "Update");
    }

    #[test]
    fn first_layer_kernels_have_no_dependencies() {
        let m = GnnModel::gcn(10, 4, 2, 0);
        let g = ComputationGraph::from_model(&m, 50, 100);
        assert!(g.kernels[0].depends_on.is_empty());
        assert!(!g.is_empty());
    }
}
