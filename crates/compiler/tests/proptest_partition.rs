//! Property-based tests of the compiler: for arbitrary model/graph sizes the
//! partition choice must satisfy Algorithm 9's constraints and the generated
//! execution schemes must tile the output exactly.

use dynasparse_compiler::schemes::{generate_tasks, pair_shape};
use dynasparse_compiler::{choose_partition, CompilerConfig, ComputationGraph};
use dynasparse_model::{GnnModel, GnnModelKind};
use proptest::prelude::*;

fn arbitrary_graph() -> impl Strategy<Value = ComputationGraph> {
    (
        prop_oneof![
            Just(GnnModelKind::Gcn),
            Just(GnnModelKind::GraphSage),
            Just(GnnModelKind::Gin),
            Just(GnnModelKind::Sgc),
        ],
        64usize..50_000, // vertices
        16usize..2_048,  // input features
        2usize..256,     // hidden
        2usize..64,      // classes
    )
        .prop_map(|(kind, v, f, h, c)| {
            let model = GnnModel::standard(kind, f, h, c, 1);
            let edges = v * 4;
            ComputationGraph::from_model(&model, v, edges)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn partition_choice_respects_all_constraints(graph in arbitrary_graph()) {
        let config = CompilerConfig::default();
        let spec = choose_partition(&graph, &config);
        prop_assert!(spec.n1 >= spec.n2);
        prop_assert!(spec.n2 >= config.min_partition);
        prop_assert!(spec.n1 <= config.max_partition_from_memory());
        prop_assert!(spec.n1.is_power_of_two());
        prop_assert!(spec.n2.is_power_of_two());
    }

    #[test]
    fn execution_schemes_tile_every_output_partition_once(graph in arbitrary_graph()) {
        let config = CompilerConfig::default();
        let spec = choose_partition(&graph, &config);
        for kernel in &graph.kernels {
            let tasks = generate_tasks(kernel, &spec);
            // Expected grid of output partitions.
            let (rows, cols) = match kernel.kind {
                dynasparse_compiler::KernelKind::Aggregate => (
                    kernel.num_vertices.div_ceil(spec.n1),
                    kernel.output_dim.div_ceil(spec.n2),
                ),
                dynasparse_compiler::KernelKind::Update => (
                    kernel.num_vertices.div_ceil(spec.n2),
                    kernel.output_dim.div_ceil(spec.n2),
                ),
            };
            prop_assert_eq!(tasks.len(), rows * cols);
            let mut seen = std::collections::HashSet::new();
            for t in &tasks {
                prop_assert!(t.output_row < rows);
                prop_assert!(t.output_col < cols);
                prop_assert!(seen.insert((t.output_row, t.output_col)));
                prop_assert!(!t.pairs.is_empty());
                // All pairs of a task have a consistent inner index chain.
                for p in &t.pairs {
                    prop_assert_eq!(p.x.grid_col, p.y.grid_row);
                }
            }
            let (m, n, d) = pair_shape(kernel.kind, &spec);
            prop_assert!(m > 0 && n > 0 && d > 0);
        }
    }
}
