//! Vertex feature matrices that may be stored dense or sparse.
//!
//! The input feature matrices of the paper's datasets range from fully dense
//! (Reddit, density 100 %) to extremely sparse (NELL, 61 278 features at
//! 0.01 % density — materialising it densely would need ~16 GB).  The
//! functional executor therefore works on a [`FeatureMatrix`] that keeps the
//! data in whichever representation is tractable and exposes the operations
//! the GNN layers need.

use dynasparse_matrix::{BlockGrid, CsrMatrix, DenseMatrix, DensityProfile, DispatchPolicy};
use serde::{Deserialize, Serialize};

/// A `|V| × f` vertex feature matrix in dense or CSR representation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FeatureMatrix {
    /// Dense representation (row-major).
    Dense(DenseMatrix),
    /// Sparse representation.
    Sparse(CsrMatrix),
}

impl FeatureMatrix {
    /// Number of vertices (rows).
    pub fn num_vertices(&self) -> usize {
        match self {
            FeatureMatrix::Dense(d) => d.rows(),
            FeatureMatrix::Sparse(s) => s.rows(),
        }
    }

    /// Feature dimension (columns).
    pub fn dim(&self) -> usize {
        match self {
            FeatureMatrix::Dense(d) => d.cols(),
            FeatureMatrix::Sparse(s) => s.cols(),
        }
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.num_vertices(), self.dim())
    }

    /// Number of non-zero feature values.
    pub fn nnz(&self) -> usize {
        match self {
            FeatureMatrix::Dense(d) => d.nnz(),
            FeatureMatrix::Sparse(s) => s.nnz(),
        }
    }

    /// Density of the feature matrix (the quantity plotted in Fig. 2).
    pub fn density(&self) -> f64 {
        match self {
            FeatureMatrix::Dense(d) => d.density(),
            FeatureMatrix::Sparse(s) => s.density(),
        }
    }

    /// True if the backing representation is sparse.
    pub fn is_sparse(&self) -> bool {
        matches!(self, FeatureMatrix::Sparse(_))
    }

    /// Left-multiplies by a sparse matrix: `A × H` (the Aggregate kernel).
    ///
    /// A dense `H` produces a dense result (aggregation densifies dense
    /// features further).  A sparse `H` runs the Gustavson sparse-sparse
    /// kernel and keeps the result in CSR form while its density stays below
    /// the dispatch threshold — very sparse features (NELL-like inputs) no
    /// longer densify unconditionally on the first Aggregate.
    pub fn aggregate(&self, adjacency: &CsrMatrix) -> dynasparse_matrix::Result<FeatureMatrix> {
        self.aggregate_with_policy(adjacency, &DispatchPolicy::default())
    }

    /// [`FeatureMatrix::aggregate`] with an explicit dispatch policy, so a
    /// caller that tunes `sparse_output_threshold` (the dispatching engine
    /// derives its policy from the planned accelerator) keeps this path's
    /// keep-sparse decision consistent with its own.
    pub fn aggregate_with_policy(
        &self,
        adjacency: &CsrMatrix,
        policy: &DispatchPolicy,
    ) -> dynasparse_matrix::Result<FeatureMatrix> {
        match self {
            FeatureMatrix::Dense(d) => Ok(FeatureMatrix::Dense(adjacency.spmm_dense(d)?)),
            FeatureMatrix::Sparse(s) => {
                let product = adjacency.spgemm(s)?;
                if policy.keep_sparse_output(product.density()) {
                    Ok(FeatureMatrix::Sparse(product))
                } else {
                    Ok(FeatureMatrix::Dense(product.to_dense()))
                }
            }
        }
    }

    /// Right-multiplies by a dense weight matrix: `H × W` (the Update
    /// kernel).  A sparse `H` uses the CSR sparse-dense kernel so that huge
    /// sparse inputs (NELL) never materialise densely.
    pub fn update(&self, weight: &DenseMatrix) -> dynasparse_matrix::Result<FeatureMatrix> {
        let dense = match self {
            FeatureMatrix::Dense(d) => dynasparse_matrix::ops::gemm_parallel(d, weight)?,
            FeatureMatrix::Sparse(s) => s.spmm_dense(weight)?,
        };
        Ok(FeatureMatrix::Dense(dense))
    }

    /// Element-wise ReLU.
    pub fn relu(&self) -> FeatureMatrix {
        match self {
            FeatureMatrix::Dense(d) => FeatureMatrix::Dense(d.map(|v| v.max(0.0))),
            FeatureMatrix::Sparse(s) => {
                let mut out = s.clone();
                out.map_retain(|v| v.max(0.0));
                FeatureMatrix::Sparse(out)
            }
        }
    }

    /// Element-wise addition of two feature matrices of the same shape.
    pub fn add(&self, other: &FeatureMatrix) -> dynasparse_matrix::Result<FeatureMatrix> {
        let a = self.to_dense();
        let b = other.to_dense();
        Ok(FeatureMatrix::Dense(a.add(&b)?))
    }

    /// Scales every element.
    pub fn scale(&self, s: f32) -> FeatureMatrix {
        match self {
            FeatureMatrix::Dense(d) => FeatureMatrix::Dense(d.scale(s)),
            FeatureMatrix::Sparse(m) => {
                let triples: Vec<(u32, u32, f32)> = m
                    .to_coo()
                    .entries()
                    .iter()
                    .map(|e| (e.row, e.col, e.value * s))
                    .collect();
                FeatureMatrix::Sparse(
                    CsrMatrix::from_triples(m.rows(), m.cols(), triples).expect("same indices"),
                )
            }
        }
    }

    /// Dense copy of the features.  Only call this when the dense size is
    /// known to be tractable.
    pub fn to_dense(&self) -> DenseMatrix {
        match self {
            FeatureMatrix::Dense(d) => d.clone(),
            FeatureMatrix::Sparse(s) => s.to_dense(),
        }
    }

    /// Borrow the sparse representation if that is what is stored.
    pub fn as_sparse(&self) -> Option<&CsrMatrix> {
        match self {
            FeatureMatrix::Sparse(s) => Some(s),
            FeatureMatrix::Dense(_) => None,
        }
    }

    /// Borrow the dense representation if that is what is stored.
    pub fn as_dense(&self) -> Option<&DenseMatrix> {
        match self {
            FeatureMatrix::Dense(d) => Some(d),
            FeatureMatrix::Sparse(_) => None,
        }
    }

    /// Per-block density profile over `grid` (used by the compiler for `H0`
    /// and by the simulated Sparsity Profiler for intermediate layers).
    pub fn density_profile(&self, grid: &BlockGrid) -> DensityProfile {
        match self {
            FeatureMatrix::Dense(d) => DensityProfile::of_dense(d, grid),
            FeatureMatrix::Sparse(s) => DensityProfile::of_csr(s, grid),
        }
    }

    /// [`FeatureMatrix::density_profile`] written into a caller-provided
    /// profile, reusing its counter allocation — the per-kernel runtime
    /// profiling path of a serving session, which must not allocate per
    /// kernel in steady state.
    pub fn density_profile_into(&self, grid: &BlockGrid, profile: &mut DensityProfile) {
        match self {
            FeatureMatrix::Dense(d) => profile.refit_dense(d, grid),
            FeatureMatrix::Sparse(s) => profile.refit_csr(s, grid),
        }
    }

    /// One non-zero count per `width`-wide column block, computed in a
    /// single pass (the per-request output-density probe of the batch-fused
    /// executor).
    pub fn nnz_col_blocks(&self, width: usize, counts: &mut Vec<usize>) {
        match self {
            FeatureMatrix::Dense(d) => d.nnz_col_blocks(width, counts),
            FeatureMatrix::Sparse(s) => s.nnz_col_blocks(width, counts),
        }
    }

    /// Fits one density profile per `width`-wide column block in a single
    /// pass; `profiles[b]` is identical to profiling block `b`'s extracted
    /// matrix (the per-request runtime profiling path of the batch-fused
    /// executor).
    pub fn density_profile_col_blocks_into(
        &self,
        grid: &BlockGrid,
        width: usize,
        profiles: &mut [DensityProfile],
    ) {
        match self {
            FeatureMatrix::Dense(d) => {
                DensityProfile::refit_dense_col_blocks(d, grid, width, profiles)
            }
            FeatureMatrix::Sparse(s) => {
                DensityProfile::refit_csr_col_blocks(s, grid, width, profiles)
            }
        }
    }

    /// Bytes occupied by the current representation.
    pub fn size_bytes(&self) -> usize {
        match self {
            FeatureMatrix::Dense(d) => d.size_bytes(),
            FeatureMatrix::Sparse(s) => s.size_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynasparse_matrix::ops::gemm_reference;

    fn small_dense() -> DenseMatrix {
        DenseMatrix::from_row_major(3, 2, vec![1.0, 0.0, -2.0, 3.0, 0.0, 0.0]).unwrap()
    }

    #[test]
    fn shape_and_density_agree_across_representations() {
        let d = small_dense();
        let fd = FeatureMatrix::Dense(d.clone());
        let fs = FeatureMatrix::Sparse(CsrMatrix::from_dense(&d));
        assert_eq!(fd.shape(), (3, 2));
        assert_eq!(fs.shape(), (3, 2));
        assert_eq!(fd.nnz(), fs.nnz());
        assert!((fd.density() - fs.density()).abs() < 1e-12);
        assert!(fs.is_sparse());
        assert!(!fd.is_sparse());
    }

    #[test]
    fn aggregate_matches_dense_reference() {
        let adj =
            CsrMatrix::from_triples(3, 3, vec![(0, 1, 1.0), (1, 0, 0.5), (2, 2, 2.0)]).unwrap();
        let h = small_dense();
        let want = gemm_reference(&adj.to_dense(), &h).unwrap();
        let got_dense = FeatureMatrix::Dense(h.clone()).aggregate(&adj).unwrap();
        let got_sparse = FeatureMatrix::Sparse(CsrMatrix::from_dense(&h))
            .aggregate(&adj)
            .unwrap();
        assert!(got_dense.to_dense().approx_eq(&want, 1e-5));
        assert!(got_sparse.to_dense().approx_eq(&want, 1e-5));
    }

    #[test]
    fn update_matches_dense_reference() {
        let h = small_dense();
        let w = DenseMatrix::from_fn(2, 4, |r, c| (r as f32 + 1.0) * (c as f32 - 1.5));
        let want = gemm_reference(&h, &w).unwrap();
        let got_dense = FeatureMatrix::Dense(h.clone()).update(&w).unwrap();
        let got_sparse = FeatureMatrix::Sparse(CsrMatrix::from_dense(&h))
            .update(&w)
            .unwrap();
        assert!(got_dense.to_dense().approx_eq(&want, 1e-5));
        assert!(got_sparse.to_dense().approx_eq(&want, 1e-5));
    }

    #[test]
    fn relu_zeroes_negatives_in_both_representations() {
        let d = small_dense();
        let rd = FeatureMatrix::Dense(d.clone()).relu();
        let rs = FeatureMatrix::Sparse(CsrMatrix::from_dense(&d)).relu();
        assert!(rd.to_dense().approx_eq(&rs.to_dense(), 0.0));
        assert_eq!(rd.to_dense().get(0, 1), 0.0);
        assert_eq!(rd.nnz(), 2);
    }

    #[test]
    fn add_and_scale() {
        let d = small_dense();
        let f = FeatureMatrix::Dense(d.clone());
        let doubled = f.add(&f).unwrap();
        assert!(doubled.to_dense().approx_eq(&d.scale(2.0), 1e-6));
        let s = FeatureMatrix::Sparse(CsrMatrix::from_dense(&d)).scale(3.0);
        assert!(s.to_dense().approx_eq(&d.scale(3.0), 1e-6));
    }

    #[test]
    fn density_profile_matches_dense_profile() {
        let d = small_dense();
        let grid = BlockGrid::new(3, 2, 2, 2);
        let pd = FeatureMatrix::Dense(d.clone()).density_profile(&grid);
        let ps = FeatureMatrix::Sparse(CsrMatrix::from_dense(&d)).density_profile(&grid);
        assert_eq!(pd, ps);
    }

    #[test]
    fn sparse_aggregate_stays_sparse_below_the_dispatch_threshold() {
        // A 1-in-16 dense feature matrix aggregated by a near-diagonal
        // adjacency keeps a very sparse product: the result must remain CSR.
        let n = 32;
        let adj = CsrMatrix::from_triples(n, n, (0..n as u32).map(|i| (i, i, 1.0))).unwrap();
        let h = DenseMatrix::from_fn(n, 16, |r, c| if (r + c) % 16 == 0 { 1.0 } else { 0.0 });
        let fs = FeatureMatrix::Sparse(CsrMatrix::from_dense(&h));
        let out = fs.aggregate(&adj).unwrap();
        assert!(
            out.is_sparse(),
            "density {} should stay sparse",
            out.density()
        );
        assert!(out.to_dense().approx_eq(&h, 1e-6));
        // A dense product over the threshold densifies.
        let dense_h = DenseMatrix::from_fn(n, 16, |_, _| 1.0);
        let fd = FeatureMatrix::Sparse(CsrMatrix::from_dense(&dense_h));
        assert!(!fd.aggregate(&adj).unwrap().is_sparse());
    }

    #[test]
    fn density_profile_into_matches_allocating_profile() {
        let d = small_dense();
        let grid = BlockGrid::new(3, 2, 2, 2);
        let mut scratch = DensityProfile::default();
        for f in [
            FeatureMatrix::Dense(d.clone()),
            FeatureMatrix::Sparse(CsrMatrix::from_dense(&d)),
        ] {
            f.density_profile_into(&grid, &mut scratch);
            assert_eq!(scratch, f.density_profile(&grid));
        }
    }

    #[test]
    fn accessors_expose_backing_representation() {
        let d = small_dense();
        let fd = FeatureMatrix::Dense(d.clone());
        assert!(fd.as_dense().is_some());
        assert!(fd.as_sparse().is_none());
        let fs = FeatureMatrix::Sparse(CsrMatrix::from_dense(&d));
        assert!(fs.as_sparse().is_some());
        assert!(fs.as_dense().is_none());
        assert!(fs.size_bytes() > 0);
    }
}
