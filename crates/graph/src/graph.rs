//! Core graph structure: a directed graph stored as a CSR adjacency matrix.

use dynasparse_matrix::CsrMatrix;
use serde::{Deserialize, Serialize};

/// A graph `G(V, E)` stored as its adjacency matrix in CSR form.
///
/// Row `i` of the adjacency matrix lists the in-neighbours that vertex `i`
/// aggregates from (so `Hout = A × Hin` is exactly the `Aggregate()` kernel of
/// Algorithm 1).  Edge values default to `1.0` before normalization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    name: String,
    adjacency: CsrMatrix,
}

impl Graph {
    /// Builds a graph from an edge list `(src, dst)`; duplicate edges are
    /// collapsed (their weights add up, then are clamped back to 1.0).
    pub fn from_edges(name: impl Into<String>, num_vertices: usize, edges: &[(u32, u32)]) -> Self {
        let mut seen = std::collections::HashSet::with_capacity(edges.len());
        let mut triples = Vec::with_capacity(edges.len());
        for &(src, dst) in edges {
            if seen.insert((dst, src)) {
                // Row `dst` aggregates from column `src`.
                triples.push((dst, src, 1.0));
            }
        }
        let adjacency = CsrMatrix::from_triples(num_vertices, num_vertices, triples)
            .expect("edge endpoints must be < num_vertices");
        Graph {
            name: name.into(),
            adjacency,
        }
    }

    /// Wraps an existing adjacency matrix (must be square).
    pub fn from_adjacency(name: impl Into<String>, adjacency: CsrMatrix) -> Self {
        assert_eq!(
            adjacency.rows(),
            adjacency.cols(),
            "adjacency matrix must be square"
        );
        Graph {
            name: name.into(),
            adjacency,
        }
    }

    /// Human-readable name of the graph.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of vertices `|V|`.
    pub fn num_vertices(&self) -> usize {
        self.adjacency.rows()
    }

    /// Number of stored edges `|E|` (after duplicate collapsing).
    pub fn num_edges(&self) -> usize {
        self.adjacency.nnz()
    }

    /// Density of the adjacency matrix (the quantity of Fig. 1).
    pub fn adjacency_density(&self) -> f64 {
        self.adjacency.density()
    }

    /// The adjacency matrix.
    pub fn adjacency(&self) -> &CsrMatrix {
        &self.adjacency
    }

    /// In-degree of vertex `v` (number of neighbours aggregated from).
    pub fn in_degree(&self, v: usize) -> usize {
        self.adjacency.row_nnz(v)
    }

    /// In-degrees of every vertex.
    pub fn in_degrees(&self) -> Vec<usize> {
        (0..self.num_vertices())
            .map(|v| self.in_degree(v))
            .collect()
    }

    /// Average in-degree.
    pub fn average_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_vertices() as f64
        }
    }

    /// Maximum in-degree.
    pub fn max_degree(&self) -> usize {
        self.in_degrees().into_iter().max().unwrap_or(0)
    }

    /// Number of vertices with no in-neighbours.
    pub fn isolated_vertices(&self) -> usize {
        self.in_degrees().into_iter().filter(|&d| d == 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph() -> Graph {
        // 0 -> 1 -> 2 -> 3
        Graph::from_edges("path", 4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn basic_statistics() {
        let g = path_graph();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.name(), "path");
        assert!((g.adjacency_density() - 3.0 / 16.0).abs() < 1e-12);
        assert!((g.average_degree() - 0.75).abs() < 1e-12);
        assert_eq!(g.max_degree(), 1);
        assert_eq!(g.isolated_vertices(), 1); // vertex 0 has no in-edge
    }

    #[test]
    fn aggregation_direction_is_dst_row() {
        let g = path_graph();
        // Row 1 (vertex 1) should reference column 0 (its in-neighbour).
        let (cols, vals) = g.adjacency().row(1);
        assert_eq!(cols, &[0]);
        assert_eq!(vals, &[1.0]);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.in_degree(1), 1);
    }

    #[test]
    fn duplicate_edges_are_collapsed() {
        let g = Graph::from_edges("dup", 3, &[(0, 1), (0, 1), (1, 2)]);
        assert_eq!(g.num_edges(), 2);
        let (_, vals) = g.adjacency().row(1);
        assert_eq!(vals, &[1.0]);
    }

    #[test]
    fn from_adjacency_round_trips() {
        let g = path_graph();
        let g2 = Graph::from_adjacency("copy", g.adjacency().clone());
        assert_eq!(g2.num_edges(), g.num_edges());
        assert_eq!(g2.num_vertices(), 4);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_adjacency_is_rejected() {
        let rect = CsrMatrix::empty(3, 4);
        let _ = Graph::from_adjacency("bad", rect);
    }
}
