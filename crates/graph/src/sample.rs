//! Deterministic, seedable neighbor samplers for per-request subgraphs.
//!
//! A GraphSAGE-style serving deployment does not run inference over the full
//! graph: every request carries its own sampled neighborhood (an ego-net
//! around the queried vertex, with the fan-in capped per hop so request
//! latency is bounded regardless of hub degree).  This module produces those
//! request-sized graphs from a resident full graph:
//!
//! * [`NeighborSampler`] — uniform k-hop fan-in capping à la GraphSAGE: from
//!   a set of root vertices, expand in-neighborhoods hop by hop, sampling at
//!   most `fanouts[h]` in-neighbors of every vertex expanded at hop `h`
//!   (uniformly, without replacement, from a seeded [`StdRng`]).
//! * [`top_degree_ego_net`] — a deterministic, RNG-free alternative that
//!   keeps the highest-in-degree neighbors at every hop (ties broken toward
//!   the lower vertex id), mirroring "keep the influential neighbors"
//!   sparsification heuristics.
//!
//! Both return a [`SampledSubgraph`]: a compact [`Graph`] over locally
//! renumbered vertices plus the remapping back to global vertex ids, so
//! per-vertex results (embeddings, class scores) can be attributed to the
//! original vertices.  Sampling is **deterministic**: the same (graph, roots,
//! fanouts, seed) always produces the same subgraph, byte for byte — the
//! traversal order is fixed and the only randomness is the seeded RNG.

use crate::features::FeatureMatrix;
use crate::graph::Graph;
use dynasparse_matrix::{CsrMatrix, DenseMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A request-sized graph sampled out of a full graph, with the vertex
/// remapping back to global ids.
///
/// Local vertex ids are assigned in discovery order (roots first, then
/// hop-1 discoveries, and so on), so row `i` of a feature matrix extracted
/// with [`SampledSubgraph::extract_features`] belongs to global vertex
/// `global_ids()[i]`, and the embeddings a session produces for the subgraph
/// map back the same way.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledSubgraph {
    graph: Graph,
    /// Local id → global id, in discovery order.
    global_ids: Vec<u32>,
    /// Hop at which each local vertex was discovered (roots are hop 0).
    hops: Vec<usize>,
    /// Global id → local id.
    local_of: HashMap<u32, u32>,
}

impl SampledSubgraph {
    /// The sampled graph over locally renumbered vertices.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consumes the subgraph, returning the sampled [`Graph`].
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// Number of sampled vertices.
    pub fn num_vertices(&self) -> usize {
        self.global_ids.len()
    }

    /// Number of sampled edges.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Global vertex id of every local vertex, in local-id order.
    pub fn global_ids(&self) -> &[u32] {
        &self.global_ids
    }

    /// Global id of local vertex `local`.
    pub fn global_id(&self, local: usize) -> u32 {
        self.global_ids[local]
    }

    /// Local id of global vertex `global`, if it was sampled.
    pub fn local_id(&self, global: u32) -> Option<usize> {
        self.local_of.get(&global).map(|&l| l as usize)
    }

    /// Hop at which each local vertex was discovered (roots are hop 0), in
    /// local-id order.
    pub fn hops(&self) -> &[usize] {
        &self.hops
    }

    /// Gathers the sampled vertices' rows out of a full-graph feature
    /// matrix, producing the request-sized input (`num_vertices × dim`) in
    /// the source representation (dense stays dense, sparse stays CSR).
    pub fn extract_features(&self, features: &FeatureMatrix) -> FeatureMatrix {
        let n = self.num_vertices();
        match features {
            FeatureMatrix::Dense(d) => {
                let mut out = DenseMatrix::zeros(n, d.cols());
                for (local, &global) in self.global_ids.iter().enumerate() {
                    for c in 0..d.cols() {
                        let v = d.get(global as usize, c);
                        if v != 0.0 {
                            out.set(local, c, v);
                        }
                    }
                }
                FeatureMatrix::Dense(out)
            }
            FeatureMatrix::Sparse(s) => {
                let mut triples = Vec::new();
                for (local, &global) in self.global_ids.iter().enumerate() {
                    let (cols, vals) = s.row(global as usize);
                    for (&c, &v) in cols.iter().zip(vals.iter()) {
                        triples.push((local as u32, c, v));
                    }
                }
                FeatureMatrix::Sparse(
                    CsrMatrix::from_triples(n, s.cols(), triples)
                        .expect("gathered rows stay in bounds"),
                )
            }
        }
    }
}

/// Uniform k-hop neighbor sampler with per-hop fan-in caps (GraphSAGE
/// style).
///
/// `fanouts[h]` bounds how many in-neighbors are kept for every vertex
/// expanded at hop `h`; a vertex with fewer in-neighbors keeps them all.
/// Every vertex is expanded at most once (at the hop it is first
/// discovered), so its in-degree in the sampled subgraph never exceeds the
/// fanout of its discovery hop — the property that bounds request size.
///
/// ```
/// use dynasparse_graph::sample::NeighborSampler;
/// use dynasparse_graph::Dataset;
///
/// let full = Dataset::Cora.spec().generate_scaled(42, 0.2).graph;
/// let sampler = NeighborSampler::new([8, 4], 7);
/// let a = sampler.sample(&full, &[3]);
/// let b = sampler.sample(&full, &[3]);
/// assert_eq!(a, b, "same seed + same graph → identical subgraph");
/// assert!(a.graph().in_degree(0) <= 8, "root fan-in is capped");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NeighborSampler {
    fanouts: Vec<usize>,
    seed: u64,
}

impl NeighborSampler {
    /// Creates a sampler expanding `fanouts.len()` hops, keeping at most
    /// `fanouts[h]` in-neighbors per vertex expanded at hop `h`, drawing
    /// from a [`StdRng`] seeded with `seed`.
    pub fn new(fanouts: impl Into<Vec<usize>>, seed: u64) -> Self {
        NeighborSampler {
            fanouts: fanouts.into(),
            seed,
        }
    }

    /// The per-hop fan-in caps.
    pub fn fanouts(&self) -> &[usize] {
        &self.fanouts
    }

    /// The RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Samples the capped k-hop in-neighborhood of `roots` out of `graph`.
    ///
    /// Duplicate roots are collapsed; every root must be a valid vertex id.
    /// The traversal is breadth-first in local-id order and the RNG stream
    /// is consumed in that fixed order, so the result is a pure function of
    /// `(graph, roots, fanouts, seed)`.
    pub fn sample(&self, graph: &Graph, roots: &[u32]) -> SampledSubgraph {
        let mut rng = StdRng::seed_from_u64(self.seed);
        sample_with(graph, roots, self.fanouts.len(), |cols, hop, keep| {
            let cap = self.fanouts[hop];
            sample_without_replacement(&mut rng, cols.len(), cap, keep);
        })
    }
}

/// Deterministic ego-net extraction keeping the highest-in-degree neighbors.
///
/// Expands `hops` hops of in-neighborhood around `root`, keeping at every
/// expansion the (at most) `cap` in-neighbors with the highest in-degree in
/// the **full** graph — ties broken toward the lower vertex id.  No RNG is
/// involved: the result is a pure function of `(graph, root, hops, cap)`.
pub fn top_degree_ego_net(graph: &Graph, root: u32, hops: usize, cap: usize) -> SampledSubgraph {
    let degrees = graph.in_degrees();
    sample_with(graph, &[root], hops, |cols, _hop, keep| {
        keep.extend(0..cols.len());
        if cols.len() > cap {
            // Highest full-graph in-degree first; ties toward the lower id.
            keep.sort_by_key(|&i| (std::cmp::Reverse(degrees[cols[i] as usize]), cols[i]));
            keep.truncate(cap);
            keep.sort_unstable();
        }
    })
}

/// Shared traversal: breadth-first expansion over in-neighborhoods with a
/// per-expansion selection callback choosing which row positions to keep.
fn sample_with(
    graph: &Graph,
    roots: &[u32],
    hops: usize,
    mut select: impl FnMut(&[u32], usize, &mut Vec<usize>),
) -> SampledSubgraph {
    let adjacency = graph.adjacency();
    let n = graph.num_vertices();
    let mut global_ids: Vec<u32> = Vec::new();
    let mut hops_of: Vec<usize> = Vec::new();
    let mut local_of: HashMap<u32, u32> = HashMap::new();
    for &r in roots {
        assert!((r as usize) < n, "root {r} out of range (|V| = {n})");
        local_of.entry(r).or_insert_with(|| {
            global_ids.push(r);
            hops_of.push(0);
            (global_ids.len() - 1) as u32
        });
    }
    let mut triples: Vec<(u32, u32, f32)> = Vec::new();
    let mut keep: Vec<usize> = Vec::new();
    let mut frontier: Vec<u32> = (0..global_ids.len() as u32).collect();
    for hop in 0..hops {
        let mut next: Vec<u32> = Vec::new();
        for &local in &frontier {
            let global = global_ids[local as usize];
            let (cols, vals) = adjacency.row(global as usize);
            keep.clear();
            select(cols, hop, &mut keep);
            for &i in keep.iter() {
                let (src, value) = (cols[i], vals[i]);
                let src_local = *local_of.entry(src).or_insert_with(|| {
                    global_ids.push(src);
                    hops_of.push(hop + 1);
                    next.push((global_ids.len() - 1) as u32);
                    (global_ids.len() - 1) as u32
                });
                triples.push((local, src_local, value));
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    let v = global_ids.len();
    let sampled = CsrMatrix::from_triples(v, v, triples).expect("local ids are in bounds");
    SampledSubgraph {
        graph: Graph::from_adjacency(format!("{}-sample", graph.name()), sampled),
        global_ids,
        hops: hops_of,
        local_of,
    }
}

/// Uniform sampling of `cap` distinct positions out of `0..row_len`
/// (partial Fisher–Yates), written into `keep` in ascending order.  Rows at
/// or under the cap are kept whole without consuming randomness.
fn sample_without_replacement(rng: &mut StdRng, row_len: usize, cap: usize, keep: &mut Vec<usize>) {
    if row_len <= cap {
        keep.extend(0..row_len);
        return;
    }
    let mut positions: Vec<usize> = (0..row_len).collect();
    for i in 0..cap {
        let j = rng.gen_range(i..row_len);
        positions.swap(i, j);
    }
    keep.extend_from_slice(&positions[..cap]);
    keep.sort_unstable();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::Dataset;
    use crate::generators::{power_law_graph, sparse_features, PowerLawConfig};

    fn full_graph() -> Graph {
        power_law_graph(
            "sample-test",
            &PowerLawConfig {
                num_vertices: 300,
                num_edges: 2400,
                exponent: 2.2,
                seed: 11,
            },
        )
    }

    #[test]
    fn same_seed_and_graph_produce_identical_subgraphs() {
        let g = full_graph();
        let sampler = NeighborSampler::new([6, 3], 42);
        let a = sampler.sample(&g, &[5, 9]);
        let b = sampler.sample(&g, &[5, 9]);
        assert_eq!(a, b);
        assert_eq!(a.graph().adjacency(), b.graph().adjacency());
        // A different seed explores differently (roots have > 6 candidates
        // somewhere in a 2400-edge graph, so the RNG stream matters).
        let c = NeighborSampler::new([6, 3], 43).sample(&g, &[5, 9]);
        assert!(
            a != c || a.num_edges() == 0,
            "different seeds should usually differ"
        );
    }

    #[test]
    fn fan_in_caps_are_respected_at_every_hop() {
        let g = full_graph();
        let fanouts = [4usize, 2];
        let sub = NeighborSampler::new(fanouts, 7).sample(&g, &[0, 17, 33]);
        for local in 0..sub.num_vertices() {
            let hop = sub.hops()[local];
            let in_deg = sub.graph().in_degree(local);
            if hop < fanouts.len() {
                assert!(
                    in_deg <= fanouts[hop],
                    "vertex {local} (hop {hop}) has in-degree {in_deg} > cap {}",
                    fanouts[hop]
                );
            } else {
                assert_eq!(in_deg, 0, "leaves are never expanded");
            }
        }
    }

    #[test]
    fn sampled_edges_exist_in_the_parent_graph_with_their_values() {
        let g = full_graph();
        let sub = NeighborSampler::new([5, 5], 3).sample(&g, &[12]);
        assert!(sub.num_vertices() >= 1);
        assert_eq!(sub.global_id(0), 12);
        assert_eq!(sub.local_id(12), Some(0));
        for dst_local in 0..sub.num_vertices() {
            let dst_global = sub.global_id(dst_local) as usize;
            let (pcols, pvals) = g.adjacency().row(dst_global);
            let (cols, vals) = sub.graph().adjacency().row(dst_local);
            for (&src_local, &v) in cols.iter().zip(vals.iter()) {
                let src_global = sub.global_id(src_local as usize);
                let pos = pcols
                    .iter()
                    .position(|&c| c == src_global)
                    .expect("sampled edge must exist in the parent graph");
                assert_eq!(pvals[pos], v, "edge values are copied verbatim");
            }
        }
    }

    #[test]
    fn small_rows_are_kept_whole_without_consuming_randomness() {
        // A path graph: every in-degree is ≤ 1, far under the cap, so two
        // different seeds must produce the same (complete) subgraph.
        let g = Graph::from_edges("path", 5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let a = NeighborSampler::new([3, 3, 3, 3], 1).sample(&g, &[4]);
        let b = NeighborSampler::new([3, 3, 3, 3], 2).sample(&g, &[4]);
        assert_eq!(a, b);
        assert_eq!(a.num_vertices(), 5);
        assert_eq!(a.num_edges(), 4);
        assert_eq!(a.hops(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn duplicate_roots_collapse_and_expansion_happens_once() {
        let g = full_graph();
        let once = NeighborSampler::new([4], 9).sample(&g, &[7]);
        let twice = NeighborSampler::new([4], 9).sample(&g, &[7, 7]);
        assert_eq!(once, twice);
    }

    #[test]
    fn top_degree_ego_net_is_deterministic_and_capped() {
        let g = full_graph();
        let a = top_degree_ego_net(&g, 3, 2, 4);
        let b = top_degree_ego_net(&g, 3, 2, 4);
        assert_eq!(a, b);
        let degrees = g.in_degrees();
        for local in 0..a.num_vertices() {
            let in_deg = a.graph().in_degree(local);
            assert!(in_deg <= 4, "cap 4 violated at vertex {local}");
            // The kept neighbors of the root are the top-degree ones: every
            // kept neighbor's full-graph degree is ≥ any dropped neighbor's.
            if local == 0 {
                let root_global = a.global_id(0) as usize;
                let (pcols, _) = g.adjacency().row(root_global);
                if pcols.len() > 4 {
                    let (kept_cols, _) = a.graph().adjacency().row(0);
                    let min_kept = kept_cols
                        .iter()
                        .map(|&c| degrees[a.global_id(c as usize) as usize])
                        .min()
                        .unwrap();
                    let kept: std::collections::HashSet<u32> =
                        kept_cols.iter().map(|&c| a.global_id(c as usize)).collect();
                    let max_dropped = pcols
                        .iter()
                        .filter(|c| !kept.contains(c))
                        .map(|&c| degrees[c as usize])
                        .max()
                        .unwrap_or(0);
                    assert!(min_kept >= max_dropped);
                }
            }
        }
    }

    #[test]
    fn extract_features_gathers_rows_in_local_order() {
        let ds = Dataset::Cora.spec().generate_scaled(5, 0.1);
        let sub = NeighborSampler::new([6, 3], 21).sample(&ds.graph, &[2, 40]);
        let gathered = sub.extract_features(&ds.features);
        assert_eq!(gathered.shape(), (sub.num_vertices(), ds.features.dim()));
        let full = ds.features.to_dense();
        let got = gathered.to_dense();
        for local in 0..sub.num_vertices() {
            let global = sub.global_id(local) as usize;
            for c in 0..ds.features.dim() {
                assert_eq!(got.get(local, c), full.get(global, c));
            }
        }
        // Sparse sources stay sparse and gather identically.
        let sparse = sparse_features(ds.graph.num_vertices(), 32, 0.05, 9);
        assert!(sparse.is_sparse());
        let g2 = sub.extract_features(&sparse);
        assert!(g2.is_sparse());
        let (want, got) = (sparse.to_dense(), g2.to_dense());
        for local in 0..sub.num_vertices() {
            let global = sub.global_id(local) as usize;
            for c in 0..32 {
                assert_eq!(got.get(local, c), want.get(global, c));
            }
        }
    }
}
