//! Adjacency-matrix normalization for the message-passing aggregators.
//!
//! The paper's IR records an aggregation operator per kernel (Table II: Max,
//! Sum, Min, Mean).  The matrix formulation of the common aggregators is a
//! normalized adjacency matrix:
//!
//! * **Sum** — `A + I` (GIN-style, self-loop added so the vertex keeps its
//!   own feature);
//! * **Mean** — `D⁻¹ (A + I)` (GraphSAGE-style row normalization);
//! * **GCN (symmetric)** — `D̃⁻¹ᐟ² (A + I) D̃⁻¹ᐟ²` (Kipf & Welling).
//!
//! The normalized matrix keeps the sparsity pattern of `A + I`, so the
//! accelerator treats all aggregators identically — only the edge values
//! change.

use dynasparse_matrix::CsrMatrix;
use serde::{Deserialize, Serialize};

/// Aggregation operator recorded in the kernel IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggregatorKind {
    /// Plain sum over neighbours (plus self-loop).
    Sum,
    /// Mean over neighbours (plus self-loop): row-normalized adjacency.
    Mean,
    /// GCN symmetric normalization.
    GcnSymmetric,
}

impl AggregatorKind {
    /// Short label used in reports and IR dumps.
    pub fn label(self) -> &'static str {
        match self {
            AggregatorKind::Sum => "sum",
            AggregatorKind::Mean => "mean",
            AggregatorKind::GcnSymmetric => "gcn",
        }
    }
}

/// Builds the normalized adjacency matrix used by the Aggregate kernel.
///
/// The input is the raw (unnormalized, no self-loop) adjacency matrix; the
/// output has self-loops added and values normalized per `kind`.
pub fn normalized_adjacency(adjacency: &CsrMatrix, kind: AggregatorKind) -> CsrMatrix {
    let with_loops = adjacency
        .add_identity()
        .expect("adjacency matrices are square");
    match kind {
        AggregatorKind::Sum => with_loops,
        AggregatorKind::Mean => {
            let inv_deg: Vec<f32> = (0..with_loops.rows())
                .map(|r| {
                    let (_, vals) = with_loops.row(r);
                    let deg: f32 = vals.iter().sum();
                    if deg > 0.0 {
                        1.0 / deg
                    } else {
                        0.0
                    }
                })
                .collect();
            with_loops
                .scale_rows(&inv_deg)
                .expect("factor length equals row count")
        }
        AggregatorKind::GcnSymmetric => {
            let inv_sqrt_deg: Vec<f32> = (0..with_loops.rows())
                .map(|r| {
                    let (_, vals) = with_loops.row(r);
                    let deg: f32 = vals.iter().sum();
                    if deg > 0.0 {
                        1.0 / deg.sqrt()
                    } else {
                        0.0
                    }
                })
                .collect();
            with_loops
                .scale_rows(&inv_sqrt_deg)
                .and_then(|m| m.scale_cols(&inv_sqrt_deg))
                .expect("factor lengths equal matrix dimensions")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_adjacency() -> CsrMatrix {
        // 0 <- 1, 1 <- 0, 1 <- 2 (row = destination)
        CsrMatrix::from_triples(3, 3, vec![(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0)]).unwrap()
    }

    #[test]
    fn sum_adds_self_loops_only() {
        let a = normalized_adjacency(&tiny_adjacency(), AggregatorKind::Sum);
        let d = a.to_dense();
        assert_eq!(d.get(0, 0), 1.0);
        assert_eq!(d.get(1, 1), 1.0);
        assert_eq!(d.get(2, 2), 1.0);
        assert_eq!(d.get(0, 1), 1.0);
        assert_eq!(a.nnz(), 3 + 3);
    }

    #[test]
    fn mean_rows_sum_to_one() {
        let a = normalized_adjacency(&tiny_adjacency(), AggregatorKind::Mean);
        for r in 0..3 {
            let (_, vals) = a.row(r);
            let s: f32 = vals.iter().sum();
            assert!((s - 1.0).abs() < 1e-6, "row {r} sums to {s}");
        }
    }

    #[test]
    fn gcn_normalization_is_symmetric_for_symmetric_graphs() {
        // Symmetric input: edges in both directions.
        let adj = CsrMatrix::from_triples(
            3,
            3,
            vec![(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)],
        )
        .unwrap();
        let a = normalized_adjacency(&adj, AggregatorKind::GcnSymmetric);
        let d = a.to_dense();
        for r in 0..3 {
            for c in 0..3 {
                assert!((d.get(r, c) - d.get(c, r)).abs() < 1e-6);
            }
        }
        // Degree-2 vertex 0: self-loop value is 1/deg = 0.5.
        assert!((d.get(0, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn normalization_preserves_sparsity_pattern() {
        let adj = tiny_adjacency();
        let sum = normalized_adjacency(&adj, AggregatorKind::Sum);
        let mean = normalized_adjacency(&adj, AggregatorKind::Mean);
        let gcn = normalized_adjacency(&adj, AggregatorKind::GcnSymmetric);
        assert_eq!(sum.nnz(), mean.nnz());
        assert_eq!(sum.nnz(), gcn.nnz());
    }

    #[test]
    fn isolated_vertices_do_not_produce_nan() {
        // Vertex 2 has no in-edges; with the self-loop its degree is 1.
        let adj = CsrMatrix::from_triples(3, 3, vec![(0, 1, 1.0)]).unwrap();
        let gcn = normalized_adjacency(&adj, AggregatorKind::GcnSymmetric);
        assert!(gcn.values().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(AggregatorKind::Sum.label(), "sum");
        assert_eq!(AggregatorKind::Mean.label(), "mean");
        assert_eq!(AggregatorKind::GcnSymmetric.label(), "gcn");
    }
}
