//! Synthetic graph and feature generators.
//!
//! Real-world graphs (Fig. 1 of the paper) are extremely sparse and have
//! heavy-tailed degree distributions, which is what makes block-level density
//! variation — and therefore fine-grained kernel-to-primitive mapping —
//! worthwhile.  The generators here produce seeded synthetic graphs with a
//! prescribed vertex count, edge count and power-law degree skew
//! (Chung–Lu-style sampling), and feature matrices with a prescribed density.

use crate::features::FeatureMatrix;
use crate::graph::Graph;
use dynasparse_matrix::{CsrMatrix, DenseMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Parameters of the power-law graph generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawConfig {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Target number of (directed) edges; the generated count matches this
    /// exactly after duplicate removal and resampling.
    pub num_edges: usize,
    /// Power-law exponent of the expected-degree sequence (2.0–3.0 covers the
    /// paper's graphs; larger = more skewed toward a few hubs).
    pub exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PowerLawConfig {
    fn default() -> Self {
        PowerLawConfig {
            num_vertices: 1000,
            num_edges: 5000,
            exponent: 2.5,
            seed: 0,
        }
    }
}

/// Generates a directed graph whose in/out endpoints are drawn from a
/// power-law expected-degree sequence (Chung–Lu sampling).  Exactly
/// `config.num_edges` distinct edges are produced (self-edges allowed but
/// rare), provided the graph is large enough to host them.
pub fn power_law_graph(name: impl Into<String>, config: &PowerLawConfig) -> Graph {
    let n = config.num_vertices;
    let target = config
        .num_edges
        .min(n.saturating_mul(n).saturating_sub(1).max(1));
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Expected-degree weights w_i ∝ (i+1)^(-1/(exponent-1)) after a random
    // permutation so hubs are spread over the vertex-id space (otherwise all
    // dense blocks would cluster at the top-left corner of A).
    let alpha = 1.0 / (config.exponent - 1.0).max(0.5);
    let mut weights: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-alpha)).collect();
    // Fisher–Yates shuffle of the weight assignment.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        weights.swap(i, j);
    }
    // Cumulative distribution for binary-search sampling.
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for &w in &weights {
        acc += w;
        cdf.push(acc);
    }
    let total = acc;

    let sample_vertex = |rng: &mut StdRng| -> u32 {
        let x = rng.gen_range(0.0..total);
        cdf.partition_point(|&c| c <= x) as u32
    };

    let mut edges = std::collections::HashSet::with_capacity(target);
    // The loop terminates because `target` never exceeds the number of
    // possible distinct pairs.
    let mut guard = 0usize;
    while edges.len() < target {
        let src = sample_vertex(&mut rng);
        let dst = sample_vertex(&mut rng);
        edges.insert((src, dst));
        guard += 1;
        if guard > target.saturating_mul(1000).max(1_000_000) {
            // Extremely dense request relative to the weight skew: fall back
            // to uniform sampling to finish.
            while edges.len() < target {
                let src = rng.gen_range(0..n) as u32;
                let dst = rng.gen_range(0..n) as u32;
                edges.insert((src, dst));
            }
        }
    }
    let edge_vec: Vec<(u32, u32)> = edges.into_iter().collect();
    Graph::from_edges(name, n, &edge_vec)
}

/// Generates a dense feature matrix of shape `num_vertices × dim` whose
/// non-zeros appear with probability `density`; values are non-negative
/// (bag-of-words-like), drawn uniformly from `(0, 1]`.
pub fn dense_features(num_vertices: usize, dim: usize, density: f64, seed: u64) -> FeatureMatrix {
    let density = density.clamp(0.0, 1.0);
    let rows: Vec<Vec<f32>> = (0..num_vertices)
        .into_par_iter()
        .map(|r| {
            let mut rng =
                StdRng::seed_from_u64(seed ^ (r as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            (0..dim)
                .map(|_| {
                    if rng.gen_bool(density) {
                        rng.gen_range(0.0f32..1.0) + f32::EPSILON
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect();
    let data: Vec<f32> = rows.into_iter().flatten().collect();
    FeatureMatrix::Dense(
        DenseMatrix::from_row_major(num_vertices, dim, data).expect("sized buffer"),
    )
}

/// Generates a sparse (CSR-backed) feature matrix; use for very
/// high-dimensional, very sparse inputs such as NELL where a dense buffer
/// would not fit in memory.
pub fn sparse_features(num_vertices: usize, dim: usize, density: f64, seed: u64) -> FeatureMatrix {
    let density = density.clamp(0.0, 1.0);
    let expected_per_row = (density * dim as f64).max(0.0);
    let rows: Vec<Vec<(u32, f32)>> = (0..num_vertices)
        .into_par_iter()
        .map(|r| {
            let mut rng =
                StdRng::seed_from_u64(seed ^ (r as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
            // Poisson-ish approximation: sample a count around the expected
            // value, then distinct positions.
            let jitter: f64 = rng.gen_range(0.5..1.5);
            let count = ((expected_per_row * jitter).round() as usize).min(dim);
            let mut cols = std::collections::HashSet::with_capacity(count);
            while cols.len() < count {
                cols.insert(rng.gen_range(0..dim) as u32);
            }
            cols.into_iter()
                .map(|c| (c, rng.gen_range(0.0f32..1.0) + f32::EPSILON))
                .collect()
        })
        .collect();
    let mut triples = Vec::new();
    for (r, row) in rows.into_iter().enumerate() {
        for (c, v) in row {
            triples.push((r as u32, c, v));
        }
    }
    FeatureMatrix::Sparse(
        CsrMatrix::from_triples(num_vertices, dim, triples).expect("generated indices in bounds"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_law_graph_matches_requested_counts() {
        let cfg = PowerLawConfig {
            num_vertices: 500,
            num_edges: 2500,
            exponent: 2.5,
            seed: 13,
        };
        let g = power_law_graph("test", &cfg);
        assert_eq!(g.num_vertices(), 500);
        assert_eq!(g.num_edges(), 2500);
    }

    #[test]
    fn power_law_graph_is_deterministic_per_seed() {
        let cfg = PowerLawConfig {
            num_vertices: 200,
            num_edges: 800,
            exponent: 2.2,
            seed: 7,
        };
        let a = power_law_graph("a", &cfg);
        let b = power_law_graph("b", &cfg);
        assert_eq!(a.adjacency(), b.adjacency());
        let cfg2 = PowerLawConfig { seed: 8, ..cfg };
        let c = power_law_graph("c", &cfg2);
        assert_ne!(a.adjacency(), c.adjacency());
    }

    #[test]
    fn power_law_graph_has_skewed_degrees() {
        let cfg = PowerLawConfig {
            num_vertices: 2000,
            num_edges: 10_000,
            exponent: 2.1,
            seed: 3,
        };
        let g = power_law_graph("skew", &cfg);
        let max = g.max_degree() as f64;
        let avg = g.average_degree();
        assert!(
            max > 8.0 * avg,
            "expected a heavy tail: max degree {max}, average {avg}"
        );
    }

    #[test]
    fn edge_count_is_capped_by_possible_pairs() {
        let cfg = PowerLawConfig {
            num_vertices: 4,
            num_edges: 1000,
            exponent: 2.5,
            seed: 1,
        };
        let g = power_law_graph("tiny", &cfg);
        assert!(g.num_edges() <= 16);
    }

    #[test]
    fn dense_features_have_requested_density() {
        let f = dense_features(300, 64, 0.25, 11);
        assert_eq!(f.shape(), (300, 64));
        assert!((f.density() - 0.25).abs() < 0.03, "density {}", f.density());
        assert!(!f.is_sparse());
    }

    #[test]
    fn dense_features_full_density_is_fully_dense() {
        let f = dense_features(50, 32, 1.0, 5);
        assert_eq!(f.nnz(), 50 * 32);
    }

    #[test]
    fn sparse_features_have_requested_density() {
        let f = sparse_features(400, 1000, 0.01, 17);
        assert!(f.is_sparse());
        assert!(
            (f.density() - 0.01).abs() < 0.005,
            "density {}",
            f.density()
        );
    }

    #[test]
    fn feature_generation_is_deterministic() {
        let a = dense_features(40, 16, 0.5, 99);
        let b = dense_features(40, 16, 0.5, 99);
        assert_eq!(a.to_dense(), b.to_dense());
        let s1 = sparse_features(40, 64, 0.1, 99);
        let s2 = sparse_features(40, 64, 0.1, 99);
        assert_eq!(s1.nnz(), s2.nnz());
    }

    #[test]
    fn feature_values_are_nonnegative() {
        let f = dense_features(30, 30, 0.4, 21);
        assert!(f.to_dense().as_slice().iter().all(|&v| v >= 0.0));
    }
}
