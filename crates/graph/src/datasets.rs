//! The six benchmark datasets of the paper (Table VI), generated
//! synthetically to the published statistics.
//!
//! | Dataset  | Vertices | Edges      | Features | Classes | Density A | Density H0 |
//! |----------|----------|------------|----------|---------|-----------|------------|
//! | CiteSeer | 3 327    | 4 732      | 3 703    | 6       | 0.08 %    | 0.85 %     |
//! | Cora     | 2 708    | 5 429      | 1 433    | 7       | 0.14 %    | 1.27 %     |
//! | PubMed   | 19 717   | 44 338     | 500      | 3       | 0.02 %    | 10.0 %     |
//! | Flickr   | 89 250   | 899 756    | 500      | 7       | 0.01 %    | 46.4 %     |
//! | NELL     | 65 755   | 251 550    | 61 278   | 186     | 0.0058 %  | 0.01 %     |
//! | Reddit   | 232 965  | 1.1 × 10⁸  | 602      | 41      | 0.21 %    | 100.0 %    |
//!
//! `generate_scaled` produces a structurally similar graph at a fraction of
//! the vertex count (used by the functional executor for the largest graphs);
//! the **full published dimensions** remain available through the
//! [`DatasetSpec`] fields so latency models always use the true sizes.

use crate::features::FeatureMatrix;
use crate::generators::{dense_features, power_law_graph, sparse_features, PowerLawConfig};
use crate::graph::Graph;
use serde::{Deserialize, Serialize};

/// Identifier of one of the paper's benchmark datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// CiteSeer citation network (CI).
    CiteSeer,
    /// Cora citation network (CO).
    Cora,
    /// PubMed citation network (PU).
    PubMed,
    /// Flickr image-relationship graph (FL).
    Flickr,
    /// NELL knowledge graph (NE).
    Nell,
    /// Reddit post-to-post graph (RE).
    Reddit,
}

impl Dataset {
    /// All six datasets in the order the paper's tables use
    /// (CI, CO, PU, FL, NE, RE).
    pub fn all() -> [Dataset; 6] {
        [
            Dataset::CiteSeer,
            Dataset::Cora,
            Dataset::PubMed,
            Dataset::Flickr,
            Dataset::Nell,
            Dataset::Reddit,
        ]
    }

    /// The three small citation graphs (hidden dimension 16 in the paper).
    pub fn small() -> [Dataset; 3] {
        [Dataset::CiteSeer, Dataset::Cora, Dataset::PubMed]
    }

    /// Two-letter abbreviation used in the paper's tables.
    pub fn abbrev(self) -> &'static str {
        match self {
            Dataset::CiteSeer => "CI",
            Dataset::Cora => "CO",
            Dataset::PubMed => "PU",
            Dataset::Flickr => "FL",
            Dataset::Nell => "NE",
            Dataset::Reddit => "RE",
        }
    }

    /// Full name.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::CiteSeer => "CiteSeer",
            Dataset::Cora => "Cora",
            Dataset::PubMed => "PubMed",
            Dataset::Flickr => "Flickr",
            Dataset::Nell => "NELL",
            Dataset::Reddit => "Reddit",
        }
    }

    /// Published statistics (Table VI).
    pub fn spec(self) -> DatasetSpec {
        match self {
            Dataset::CiteSeer => DatasetSpec {
                dataset: self,
                num_vertices: 3_327,
                num_edges: 4_732,
                feature_dim: 3_703,
                num_classes: 6,
                adjacency_density: 0.0008,
                feature_density: 0.0085,
                hidden_dim: 16,
            },
            Dataset::Cora => DatasetSpec {
                dataset: self,
                num_vertices: 2_708,
                num_edges: 5_429,
                feature_dim: 1_433,
                num_classes: 7,
                adjacency_density: 0.0014,
                feature_density: 0.0127,
                hidden_dim: 16,
            },
            Dataset::PubMed => DatasetSpec {
                dataset: self,
                num_vertices: 19_717,
                num_edges: 44_338,
                feature_dim: 500,
                num_classes: 3,
                adjacency_density: 0.0002,
                feature_density: 0.10,
                hidden_dim: 16,
            },
            Dataset::Flickr => DatasetSpec {
                dataset: self,
                num_vertices: 89_250,
                num_edges: 899_756,
                feature_dim: 500,
                num_classes: 7,
                adjacency_density: 0.0001,
                feature_density: 0.464,
                hidden_dim: 128,
            },
            Dataset::Nell => DatasetSpec {
                dataset: self,
                num_vertices: 65_755,
                num_edges: 251_550,
                feature_dim: 61_278,
                num_classes: 186,
                adjacency_density: 0.000058,
                feature_density: 0.0001,
                hidden_dim: 128,
            },
            Dataset::Reddit => DatasetSpec {
                dataset: self,
                num_vertices: 232_965,
                num_edges: 110_000_000,
                feature_dim: 602,
                num_classes: 41,
                adjacency_density: 0.0021,
                feature_density: 1.0,
                hidden_dim: 128,
            },
        }
    }
}

/// Published statistics of one dataset plus the hidden dimension the paper
/// uses for it (16 for CI/CO/PU, 128 for FL/NE/RE).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Which dataset this spec describes.
    pub dataset: Dataset,
    /// Number of vertices `|V|`.
    pub num_vertices: usize,
    /// Number of edges `|E|`.
    pub num_edges: usize,
    /// Input feature dimension `f0`.
    pub feature_dim: usize,
    /// Number of output classes.
    pub num_classes: usize,
    /// Density of the adjacency matrix (Fig. 1 / Table VI).
    pub adjacency_density: f64,
    /// Density of the input feature matrix `H0` (Table VI).
    pub feature_density: f64,
    /// Hidden dimension used by the paper's 2-layer GNN configuration.
    pub hidden_dim: usize,
}

impl DatasetSpec {
    /// Whether the input features should be stored sparsely when generated
    /// (dense storage of NELL's feature matrix would need ≈16 GB).
    pub fn prefers_sparse_features(&self) -> bool {
        let dense_bytes = self.num_vertices * self.feature_dim * 4;
        self.feature_density < 0.05 && dense_bytes > 256 * 1024 * 1024
    }

    /// Average degree `|E| / |V|`.
    pub fn average_degree(&self) -> f64 {
        self.num_edges as f64 / self.num_vertices as f64
    }

    /// Generates the dataset at full published scale.
    pub fn generate(&self, seed: u64) -> GraphDataset {
        self.generate_scaled(seed, 1.0)
    }

    /// Generates a structurally similar dataset scaled to `scale ∈ (0, 1]` of
    /// the published vertex count, preserving the average degree, feature
    /// dimension and feature density.  `scale = 1.0` reproduces the published
    /// sizes.
    pub fn generate_scaled(&self, seed: u64, scale: f64) -> GraphDataset {
        let scale = scale.clamp(1e-6, 1.0);
        let num_vertices = ((self.num_vertices as f64 * scale).round() as usize).max(16);
        let num_edges = ((self.num_edges as f64 * scale).round() as usize).max(num_vertices);
        let graph = power_law_graph(
            self.dataset.name(),
            &PowerLawConfig {
                num_vertices,
                num_edges,
                exponent: 2.3,
                seed,
            },
        );
        let features = if self.prefers_sparse_features() {
            sparse_features(
                num_vertices,
                self.feature_dim,
                self.feature_density,
                seed ^ 0xFEED,
            )
        } else {
            dense_features(
                num_vertices,
                self.feature_dim,
                self.feature_density,
                seed ^ 0xFEED,
            )
        };
        GraphDataset {
            spec: *self,
            scale,
            graph,
            features,
        }
    }
}

/// A generated dataset: the graph, the input features and the spec it was
/// derived from.
#[derive(Debug, Clone)]
pub struct GraphDataset {
    /// Published statistics this instance was generated from.
    pub spec: DatasetSpec,
    /// Scale factor actually used (1.0 = published size).
    pub scale: f64,
    /// The generated graph.
    pub graph: Graph,
    /// The generated input feature matrix `H0`.
    pub features: FeatureMatrix,
}

impl GraphDataset {
    /// Number of vertices of the *generated* instance.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Number of edges of the *generated* instance.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// True when the instance is smaller than the published dataset.
    pub fn is_scaled(&self) -> bool {
        self.scale < 1.0
    }

    /// Measured adjacency density of the generated instance.
    pub fn adjacency_density(&self) -> f64 {
        self.graph.adjacency_density()
    }

    /// Measured input feature density of the generated instance.
    pub fn feature_density(&self) -> f64 {
        self.features.density()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_vi_statistics_are_reproduced() {
        let spec = Dataset::Cora.spec();
        assert_eq!(spec.num_vertices, 2708);
        assert_eq!(spec.num_edges, 5429);
        assert_eq!(spec.feature_dim, 1433);
        assert_eq!(spec.num_classes, 7);
        assert_eq!(spec.hidden_dim, 16);
        let spec = Dataset::Reddit.spec();
        assert_eq!(spec.num_vertices, 232_965);
        assert_eq!(spec.hidden_dim, 128);
        assert!((spec.feature_density - 1.0).abs() < 1e-12);
    }

    #[test]
    fn published_density_is_consistent_with_counts() {
        // |E| / |V|^2 should be within 2x of the published adjacency density
        // (the paper rounds its density column).
        for ds in Dataset::all() {
            let s = ds.spec();
            let implied = s.num_edges as f64 / (s.num_vertices as f64 * s.num_vertices as f64);
            let ratio = implied / s.adjacency_density;
            assert!(
                (0.4..=2.6).contains(&ratio),
                "{}: implied {implied:.2e} vs published {:.2e}",
                ds.name(),
                s.adjacency_density
            );
        }
    }

    #[test]
    fn abbreviations_match_paper_order() {
        let abbrevs: Vec<&str> = Dataset::all().iter().map(|d| d.abbrev()).collect();
        assert_eq!(abbrevs, vec!["CI", "CO", "PU", "FL", "NE", "RE"]);
    }

    #[test]
    fn cora_generation_matches_spec() {
        let ds = Dataset::Cora.spec().generate(42);
        assert_eq!(ds.num_vertices(), 2708);
        assert_eq!(ds.num_edges(), 5429);
        assert!(!ds.is_scaled());
        assert!((ds.feature_density() - 0.0127).abs() < 0.004);
        assert!(!ds.features.is_sparse());
    }

    #[test]
    fn nell_features_are_sparse_backed() {
        assert!(Dataset::Nell.spec().prefers_sparse_features());
        assert!(!Dataset::Cora.spec().prefers_sparse_features());
        assert!(!Dataset::Reddit.spec().prefers_sparse_features());
        // Generate a small-scale NELL and check representation + density.
        let ds = Dataset::Nell.spec().generate_scaled(1, 0.02);
        assert!(ds.features.is_sparse());
        assert!(ds.feature_density() < 0.001);
    }

    #[test]
    fn scaling_preserves_average_degree() {
        let spec = Dataset::PubMed.spec();
        let ds = spec.generate_scaled(3, 0.25);
        assert!(ds.is_scaled());
        let full_avg = spec.average_degree();
        let got_avg = ds.num_edges() as f64 / ds.num_vertices() as f64;
        assert!(
            (got_avg - full_avg).abs() / full_avg < 0.1,
            "avg degree {got_avg:.2} vs published {full_avg:.2}"
        );
        assert_eq!(ds.features.dim(), 500);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = Dataset::Cora.spec().generate_scaled(7, 0.1);
        let b = Dataset::Cora.spec().generate_scaled(7, 0.1);
        assert_eq!(a.graph.adjacency(), b.graph.adjacency());
        assert_eq!(a.features.nnz(), b.features.nnz());
    }
}
