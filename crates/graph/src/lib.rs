//! Graph structures and synthetic benchmark datasets for the Dynasparse
//! reproduction.
//!
//! The paper evaluates full-graph GNN inference on six widely used graphs
//! (Cora, CiteSeer, PubMed, Flickr, NELL, Reddit — Table VI).  We do not ship
//! the original datasets; instead [`datasets`] provides seeded synthetic
//! generators whose structural statistics match Table VI: vertex count, edge
//! count, feature dimension, number of classes, adjacency density and input
//! feature density, with a power-law degree distribution.  The Dynasparse
//! mapping decisions depend only on matrix shapes and per-block densities, so
//! matching those statistics preserves the behaviour the paper measures.
//!
//! The crate also provides the graph-side preprocessing every GNN model
//! needs: self-loop insertion and symmetric/row normalization of the
//! adjacency matrix ([`normalize`]), and a [`features::FeatureMatrix`] type
//! that keeps very sparse feature matrices (e.g. NELL's 61 278-dimensional,
//! 0.01 %-dense features) in compressed form.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod datasets;
pub mod features;
pub mod generators;
pub mod graph;
pub mod normalize;
pub mod sample;

pub use datasets::{Dataset, DatasetSpec, GraphDataset};
pub use features::FeatureMatrix;
pub use graph::Graph;
pub use normalize::{normalized_adjacency, AggregatorKind};
pub use sample::{top_degree_ego_net, NeighborSampler, SampledSubgraph};
