//! Result types produced by the engine: the per-request [`InferenceReport`]
//! of the Planner → Session pipeline and the one-shot [`Evaluation`] the
//! compatibility wrapper assembles from it.

use crate::planner::CompiledPlan;
use dynasparse_compiler::KernelKind;
use dynasparse_graph::FeatureMatrix;
use dynasparse_matrix::PartitionSpec;
use dynasparse_model::DensityTrace;
use dynasparse_runtime::{MappingStrategy, PrimitiveMix, RuntimeOverhead};
use serde::Serialize;

/// Per-kernel execution summary under one mapping strategy.
#[derive(Debug, Clone, Serialize)]
pub struct KernelReport {
    /// Kernel id (execution order).
    pub kernel_id: usize,
    /// GNN layer the kernel belongs to (1-based).
    pub layer_id: usize,
    /// Aggregate or Update.
    pub kind: KernelKind,
    /// Accelerator cycles spent on this kernel (its scheduled makespan).
    pub cycles: u64,
    /// Core utilization while this kernel ran.
    pub utilization: f64,
    /// Kernel-to-primitive decisions made by the soft processor.
    pub decisions: usize,
    /// How the kernel's block products were mapped.
    pub mix: PrimitiveMix,
    /// Density of the kernel's input feature matrix (measured at runtime).
    pub input_density: f64,
    /// Density of the kernel's output feature matrix.
    pub output_density: f64,
}

/// Execution summary of one mapping strategy over the whole model.
#[derive(Debug, Clone, Serialize)]
pub struct StrategyRun {
    /// The strategy evaluated.
    pub strategy: MappingStrategy,
    /// Per-kernel reports in execution order.
    pub kernels: Vec<KernelReport>,
    /// Total accelerator execution cycles (sum of kernel makespans).
    pub total_cycles: u64,
    /// Accelerator execution latency in milliseconds — the metric of
    /// Table VII and Table X.
    pub latency_ms: f64,
    /// Runtime-system overhead (Fig. 13).
    pub overhead: RuntimeOverhead,
    /// End-to-end latency in milliseconds: preprocessing + CPU→FPGA data
    /// movement + accelerator execution (Section VIII-D).
    pub end_to_end_ms: f64,
    /// Utilization averaged over the run, weighted by kernel duration.
    pub average_utilization: f64,
}

impl StrategyRun {
    /// Total number of kernel-to-primitive decisions across kernels.
    pub fn total_decisions(&self) -> usize {
        self.kernels.iter().map(|k| k.decisions).sum()
    }

    /// Aggregated primitive mix across kernels.
    pub fn total_mix(&self) -> PrimitiveMix {
        let mut mix = PrimitiveMix::default();
        for k in &self.kernels {
            mix.gemm += k.mix.gemm;
            mix.spdmm += k.mix.spdmm;
            mix.spmm += k.mix.spmm;
            mix.skipped += k.mix.skipped;
        }
        mix
    }
}

/// Result of one inference request served by a
/// [`Session`](crate::Session).
///
/// Unlike [`Evaluation`], a report carries only per-request quantities;
/// the amortized artifacts (compile report, partition, static sparsity)
/// live on the [`CompiledPlan`] the session serves from.
#[derive(Debug, Clone, Serialize)]
pub struct InferenceReport {
    /// Zero-based index of this request within its session.
    pub request_index: usize,
    /// Cold-start PCIe milliseconds for this request: the plan's static data
    /// (adjacency + weights + IR) plus the request's features.  This is what
    /// the request costs if nothing is resident on the accelerator yet.
    pub data_movement_ms: f64,
    /// PCIe milliseconds for the request's feature matrix alone — the only
    /// transfer paid once the plan's static data is resident (steady state).
    pub feature_movement_ms: f64,
    /// Densities of the request input and of every kernel output (Fig. 2).
    pub density_trace: DensityTrace,
    /// The execution backend's predicted wall-clock milliseconds summed over
    /// every kernel dispatched for this request (`0.0` when the backend
    /// prices nothing, e.g. the regions policy or the reference path).  On
    /// the fused batch path the batch-wide sum is attributed evenly across
    /// the batch's reports.  Serving runtimes price modeled device dwell
    /// with this instead of a hard-coded host-time multiplier.
    pub predicted_kernel_ms: f64,
    /// One run per session strategy, in session order.
    pub runs: Vec<StrategyRun>,
    /// Output embeddings of the functional execution.
    #[serde(skip)]
    pub output_embeddings: FeatureMatrix,
}

impl InferenceReport {
    /// The run for `strategy`, if the session prices it.
    pub fn run(&self, strategy: MappingStrategy) -> Option<&StrategyRun> {
        self.runs.iter().find(|r| r.strategy == strategy)
    }

    /// Speedup of `fast` over `slow` in accelerator latency.
    pub fn speedup(&self, slow: MappingStrategy, fast: MappingStrategy) -> Option<f64> {
        let s = self.run(slow)?;
        let f = self.run(fast)?;
        if f.latency_ms <= 0.0 {
            return None;
        }
        Some(s.latency_ms / f.latency_ms)
    }

    /// Steady-state request latency for `strategy`: feature-matrix movement
    /// plus accelerator execution, with compilation *and* the one-time
    /// static transfer amortized away.  This is the number a serving
    /// deployment observes per request after warm-up, versus
    /// [`StrategyRun::end_to_end_ms`] which charges the one-time
    /// preprocessing and full transfer to every call.
    pub fn amortized_ms(&self, strategy: MappingStrategy) -> Option<f64> {
        self.run(strategy)
            .map(|r| self.feature_movement_ms + r.latency_ms)
    }

    /// Assembles the legacy one-shot [`Evaluation`] from this report and the
    /// plan it was served from.
    pub fn into_evaluation(self, plan: &CompiledPlan) -> Evaluation {
        Evaluation {
            compile_ms: plan.compile_ms(),
            partition: plan.partition(),
            data_movement_ms: self.data_movement_ms,
            density_trace: self.density_trace,
            runs: self.runs,
            output_embeddings: self.output_embeddings,
        }
    }
}

/// Full evaluation of one (model, dataset) pair under several strategies.
#[derive(Debug, Clone, Serialize)]
pub struct Evaluation {
    /// Compilation/preprocessing wall-clock time in milliseconds (Table IX).
    pub compile_ms: f64,
    /// Partition sizes chosen by the compiler.
    pub partition: PartitionSpec,
    /// CPU→FPGA data-movement time in milliseconds (PCIe model).
    pub data_movement_ms: f64,
    /// Densities of the input and of every kernel output (Fig. 2).
    pub density_trace: DensityTrace,
    /// One run per requested strategy, in request order.
    pub runs: Vec<StrategyRun>,
    /// Final output embeddings of the functional execution.
    #[serde(skip)]
    pub output_embeddings: FeatureMatrix,
}

impl Evaluation {
    /// The run for `strategy`, if it was requested.
    pub fn run(&self, strategy: MappingStrategy) -> Option<&StrategyRun> {
        self.runs.iter().find(|r| r.strategy == strategy)
    }

    /// Speedup of `fast` over `slow` in accelerator latency
    /// (the SO-S1 / SO-S2 columns of Table VII).
    pub fn speedup(&self, slow: MappingStrategy, fast: MappingStrategy) -> Option<f64> {
        let s = self.run(slow)?;
        let f = self.run(fast)?;
        if f.latency_ms <= 0.0 {
            return None;
        }
        Some(s.latency_ms / f.latency_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynasparse_matrix::DenseMatrix;

    fn dummy_run(strategy: MappingStrategy, latency_ms: f64) -> StrategyRun {
        StrategyRun {
            strategy,
            kernels: vec![KernelReport {
                kernel_id: 0,
                layer_id: 1,
                kind: KernelKind::Update,
                cycles: 100,
                utilization: 0.9,
                decisions: 4,
                mix: PrimitiveMix {
                    gemm: 1,
                    spdmm: 2,
                    spmm: 0,
                    skipped: 1,
                },
                input_density: 0.5,
                output_density: 0.4,
            }],
            total_cycles: 100,
            latency_ms,
            overhead: RuntimeOverhead {
                k2p_seconds: 1e-6,
                scheduling_seconds: 1e-7,
                accelerator_seconds: latency_ms * 1e-3,
            },
            end_to_end_ms: latency_ms + 1.0,
            average_utilization: 0.9,
        }
    }

    fn dummy_eval() -> Evaluation {
        Evaluation {
            compile_ms: 0.5,
            partition: PartitionSpec::new(256, 16).unwrap(),
            data_movement_ms: 0.5,
            density_trace: DensityTrace {
                input_density: 0.1,
                stages: vec![],
            },
            runs: vec![
                dummy_run(MappingStrategy::Static1, 10.0),
                dummy_run(MappingStrategy::Dynamic, 2.0),
            ],
            output_embeddings: FeatureMatrix::Dense(DenseMatrix::zeros(1, 1)),
        }
    }

    #[test]
    fn run_lookup_and_speedup() {
        let e = dummy_eval();
        assert!(e.run(MappingStrategy::Dynamic).is_some());
        assert!(e.run(MappingStrategy::Static2).is_none());
        let s = e
            .speedup(MappingStrategy::Static1, MappingStrategy::Dynamic)
            .unwrap();
        assert!((s - 5.0).abs() < 1e-12);
        assert!(e
            .speedup(MappingStrategy::Static2, MappingStrategy::Dynamic)
            .is_none());
    }

    #[test]
    fn mix_and_decision_aggregation() {
        let e = dummy_eval();
        let run = e.run(MappingStrategy::Dynamic).unwrap();
        assert_eq!(run.total_decisions(), 4);
        let mix = run.total_mix();
        assert_eq!(mix.total(), 4);
        assert_eq!(mix.spdmm, 2);
    }
}
