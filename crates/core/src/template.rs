//! Model templates: the topology-independent half of a [`CompiledPlan`],
//! compiled once per model and instantiated cheaply per request.
//!
//! [`Planner::plan`](crate::Planner::plan) fuses two kinds of work that have
//! very different lifetimes in a subgraph-serving deployment (GraphSAGE-style
//! traffic where every request carries its own sampled ego-net):
//!
//! * **Model-only work** — validating the model, profiling the *weight*
//!   matrices' block densities, and measuring the host calibration.  None of
//!   it depends on the request's topology, yet a cold plan repeats it per
//!   request.
//! * **Topology work** — building the computation graph IR, choosing
//!   partition sizes (Algorithm 9), generating execution schemes, profiling
//!   the adjacency and input-feature densities, and normalizing the
//!   adjacency per aggregator.  This is genuinely per-request.
//!
//! [`ModelTemplate::compile`] performs the model-only work once;
//! [`ModelTemplate::instantiate`] performs only the topology work, producing
//! a [`TemplateInstance`] whose [`CompiledPlan`] is **bit-identical** to what
//! a cold `Planner::plan` would produce for the same `(model, subgraph)` —
//! same program, same density profiles, same strategy pricing, same
//! embeddings (proved by `tests/integration_template.rs`).  The weight
//! profiles are memoized per distinct partition width `N2` (the weight grid
//! depends on the spec only through `N2`), so steady-state instantiation
//! profiles nothing but the request's adjacency and features.

use crate::engine::{CostModelKind, EngineOptions};
use crate::error::{CompileError, DynasparseError};
use crate::planner::CompiledPlan;
use crate::session::OwnedSession;
use dynasparse_compiler::{compile_topology_with_weights, StaticSparsity};
use dynasparse_graph::{FeatureMatrix, Graph};
use dynasparse_matrix::{DensityProfile, HostCalibration, MatrixError, PartitionSpec};
use dynasparse_model::{prepare_adjacencies, GnnModel};
use dynasparse_runtime::MappingStrategy;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The topology-independent, reusable half of a [`CompiledPlan`]: the
/// validated model, the engine options, the shared host calibration, and a
/// cache of weight density profiles keyed by partition width `N2`.
///
/// Compile a template once per resident model, then instantiate it against
/// each request's sampled subgraph — instantiation re-profiles neither the
/// weights nor the host, which is what makes per-request topologies cheap:
///
/// ```
/// use dynasparse::{EngineOptions, MappingStrategy, ModelTemplate};
/// use dynasparse_graph::{Dataset, NeighborSampler};
/// use dynasparse_model::GnnModel;
///
/// let full = Dataset::Cora.spec().generate_scaled(42, 0.2);
/// let model = GnnModel::gcn(full.features.dim(), 16, full.spec.num_classes, 7);
///
/// // Model-only compilation: weights, calibration — once per model.
/// let template = ModelTemplate::compile(&model, EngineOptions::default()).unwrap();
///
/// // Per request: sample an ego-net, instantiate, infer.
/// let sub = NeighborSampler::new([8, 4], 7).sample(&full.graph, &[3]);
/// let features = sub.extract_features(&full.features);
/// let instance = template.instantiate(sub.graph(), &features).unwrap();
/// let mut session = instance.session(&[MappingStrategy::Dynamic]);
/// let report = session.infer(&features).unwrap();
///
/// // Row i of the embeddings belongs to global vertex sub.global_id(i).
/// let embeddings = report.output_embeddings.to_dense();
/// assert_eq!(embeddings.rows(), sub.num_vertices());
/// assert_eq!(sub.global_id(0), 3, "local 0 is the queried root");
/// ```
#[derive(Debug)]
pub struct ModelTemplate {
    options: EngineOptions,
    model: Arc<GnnModel>,
    calibration: Option<Arc<HostCalibration>>,
    /// Weight density profiles per distinct partition width `N2`.  The
    /// weight grid is `BlockGrid::new(rows, cols, n2, n2)` — independent of
    /// `N1` and of the topology — so every instantiation that lands on the
    /// same `N2` shares one profiling pass.
    weight_profiles: Mutex<HashMap<usize, Arc<Vec<DensityProfile>>>>,
    compile_ms: f64,
}

// Serving runtimes hold one resident template behind an `Arc` and
// instantiate it from every worker thread.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ModelTemplate>();
};

impl ModelTemplate {
    /// Validates `model` and performs every input-independent preparation:
    /// the host calibration gate of [`Planner::plan`](crate::Planner::plan)
    /// and the (lazily filled) weight-profile cache.
    pub fn compile(model: &GnnModel, options: EngineOptions) -> Result<Self, DynasparseError> {
        let start = Instant::now();
        model.validate()?;
        let calibration = match (options.host.dispatch, options.host.cost_model) {
            (true, CostModelKind::Calibrated) => HostCalibration::shared(),
            _ => None,
        };
        Ok(ModelTemplate {
            options,
            model: Arc::new(model.clone()),
            calibration,
            weight_profiles: Mutex::new(HashMap::new()),
            compile_ms: start.elapsed().as_secs_f64() * 1e3,
        })
    }

    /// Like [`ModelTemplate::compile`], but returns the template already
    /// wrapped in an [`Arc`], ready to be shared across serving threads.
    pub fn compile_shared(
        model: &GnnModel,
        options: EngineOptions,
    ) -> Result<Arc<Self>, DynasparseError> {
        Self::compile(model, options).map(Arc::new)
    }

    /// The engine options every instance compiles with.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// The resident model.
    pub fn model(&self) -> &GnnModel {
        &self.model
    }

    /// Milliseconds the one-time model compilation took.
    pub fn compile_ms(&self) -> f64 {
        self.compile_ms
    }

    /// Number of distinct partition widths whose weight profiles are cached.
    pub fn weight_profile_cache_len(&self) -> usize {
        self.weight_profiles.lock().unwrap().len()
    }

    /// Approximate resident bytes of the template: the model weights plus
    /// the cached weight density-profile records (16 bytes each).  The
    /// byte-budget counterpart of [`CompiledPlan::approx_bytes`].
    pub fn approx_bytes(&self) -> usize {
        let weights: usize = self.model.weights.iter().map(|w| w.size_bytes()).sum();
        let profiles: usize = self
            .weight_profiles
            .lock()
            .unwrap()
            .values()
            .map(|ps| ps.iter().map(|p| p.block_count() * 16).sum::<usize>())
            .sum();
        weights + profiles
    }

    /// Checks one request's `(subgraph, features)` pair against the model —
    /// the same up-front validation [`Planner::plan`](crate::Planner::plan)
    /// performs, shared with the serving runtime's submission path.
    pub fn validate_request(
        &self,
        graph: &Graph,
        features: &FeatureMatrix,
    ) -> Result<(), DynasparseError> {
        if graph.num_vertices() == 0 {
            return Err(CompileError::EmptyGraph.into());
        }
        if features.dim() != self.model.input_dim {
            return Err(CompileError::FeatureDimensionMismatch {
                model_input_dim: self.model.input_dim,
                feature_dim: features.dim(),
            }
            .into());
        }
        if features.num_vertices() != graph.num_vertices() {
            return Err(MatrixError::ShapeMismatch {
                op: "template instantiate",
                lhs: features.shape(),
                rhs: (graph.num_vertices(), self.model.input_dim),
            }
            .into());
        }
        Ok(())
    }

    /// Instantiates the template against one request's topology: builds the
    /// IR, chooses partition sizes, generates execution schemes, profiles
    /// the adjacency and input features, and normalizes the adjacency per
    /// aggregator — but re-profiles no weights and re-measures no
    /// calibration.  The resulting plan is bit-identical to a cold
    /// [`Planner::plan`](crate::Planner::plan) over the same `(model,
    /// subgraph, features)`.
    pub fn instantiate(
        &self,
        graph: &Graph,
        features: &FeatureMatrix,
    ) -> Result<TemplateInstance, DynasparseError> {
        let start = Instant::now();
        self.validate_request(graph, features)?;
        let report = compile_topology_with_weights(
            &self.model,
            graph,
            features,
            &self.options.compiler,
            |spec| self.weights_for(spec),
        );
        let adjacencies = Arc::new(prepare_adjacencies(&self.model, graph));
        let plan = CompiledPlan {
            options: self.options.clone(),
            model: Arc::clone(&self.model),
            adjacencies,
            calibration: self.calibration.clone(),
            report,
        };
        Ok(TemplateInstance {
            plan: Arc::new(plan),
            instantiate_ms: start.elapsed().as_secs_f64() * 1e3,
        })
    }

    /// The weight profiles for `spec`, out of the per-`N2` cache; a miss
    /// profiles them once and keeps them for every later instantiation that
    /// lands on the same partition width.
    fn weights_for(&self, spec: &PartitionSpec) -> Vec<DensityProfile> {
        let mut cache = self.weight_profiles.lock().unwrap();
        let cached = cache
            .entry(spec.n2)
            .or_insert_with(|| Arc::new(StaticSparsity::profile_weights(&self.model, spec)));
        cached.as_ref().clone()
    }
}

/// One per-request instantiation of a [`ModelTemplate`]: a shareable
/// [`CompiledPlan`] over the request's subgraph, plus how long the
/// instantiation took (the per-request counterpart of
/// [`CompiledPlan::compile_ms`]).
///
/// Dereferences to the plan, so every plan accessor
/// ([`num_vertices`](CompiledPlan::num_vertices),
/// [`partition`](CompiledPlan::partition), …) is available directly.
#[derive(Debug, Clone)]
pub struct TemplateInstance {
    plan: Arc<CompiledPlan>,
    instantiate_ms: f64,
}

impl TemplateInstance {
    /// The instantiated plan.
    pub fn plan(&self) -> &Arc<CompiledPlan> {
        &self.plan
    }

    /// Consumes the instance, returning the shared plan.
    pub fn into_plan(self) -> Arc<CompiledPlan> {
        self.plan
    }

    /// Milliseconds the per-request instantiation took (validation,
    /// IR + partitioning + schemes, adjacency/feature profiling, adjacency
    /// normalization).
    pub fn instantiate_ms(&self) -> f64 {
        self.instantiate_ms
    }

    /// Opens a session over the instantiated plan (see
    /// [`CompiledPlan::session`]); the session co-owns the plan, so it can
    /// outlive the instance and move across threads.
    pub fn session(&self, strategies: &[MappingStrategy]) -> OwnedSession {
        self.plan.session_shared(strategies)
    }
}

impl std::ops::Deref for TemplateInstance {
    type Target = CompiledPlan;

    fn deref(&self) -> &CompiledPlan {
        &self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynasparse_graph::{Dataset, NeighborSampler};

    fn fixture() -> (GnnModel, dynasparse_graph::GraphDataset) {
        let ds = Dataset::Cora.spec().generate_scaled(13, 0.15);
        let model = GnnModel::gcn(ds.features.dim(), 16, ds.spec.num_classes, 3);
        (model, ds)
    }

    #[test]
    fn instantiate_validates_like_the_planner() {
        let (model, ds) = fixture();
        let template = ModelTemplate::compile(&model, EngineOptions::default()).unwrap();
        let sub = NeighborSampler::new([6, 3], 5).sample(&ds.graph, &[1]);
        let features = sub.extract_features(&ds.features);

        // Wrong feature dimension.
        let narrow = dynasparse_graph::generators::dense_features(sub.num_vertices(), 4, 0.5, 1);
        let err = template.instantiate(sub.graph(), &narrow).unwrap_err();
        assert!(matches!(
            err,
            DynasparseError::Compile(CompileError::FeatureDimensionMismatch { .. })
        ));

        // Row count disagreeing with the subgraph.
        let tall = dynasparse_graph::generators::dense_features(
            sub.num_vertices() + 1,
            ds.features.dim(),
            0.5,
            1,
        );
        let err = template.instantiate(sub.graph(), &tall).unwrap_err();
        assert!(matches!(
            err,
            DynasparseError::Execution(MatrixError::ShapeMismatch {
                op: "template instantiate",
                ..
            })
        ));

        // The valid pair instantiates.
        let instance = template.instantiate(sub.graph(), &features).unwrap();
        assert_eq!(instance.num_vertices(), sub.num_vertices());
        assert!(instance.instantiate_ms() >= 0.0);
        assert!(template.approx_bytes() > 0);
    }

    #[test]
    fn weight_profiles_are_cached_per_partition_width() {
        let (model, ds) = fixture();
        let template = ModelTemplate::compile(&model, EngineOptions::default()).unwrap();
        assert_eq!(template.weight_profile_cache_len(), 0);

        let sampler = NeighborSampler::new([8, 4], 11);
        let a = sampler.sample(&ds.graph, &[2]);
        let fa = a.extract_features(&ds.features);
        let ia = template.instantiate(a.graph(), &fa).unwrap();
        assert_eq!(template.weight_profile_cache_len(), 1);

        // A differently sized subgraph landing on the same N2 reuses the
        // cached profiles instead of re-profiling.
        let b = sampler.sample(&ds.graph, &[2, 30, 57]);
        let fb = b.extract_features(&ds.features);
        let ib = template.instantiate(b.graph(), &fb).unwrap();
        if ia.partition().n2 == ib.partition().n2 {
            assert_eq!(template.weight_profile_cache_len(), 1);
        }
        assert_eq!(
            ia.program().static_sparsity.weights,
            ib.program().static_sparsity.weights
        );
    }

    #[test]
    fn instances_share_the_template_model_and_calibration_by_pointer() {
        let (model, ds) = fixture();
        let template = ModelTemplate::compile(&model, EngineOptions::default()).unwrap();
        let sub = NeighborSampler::new([5, 5], 3).sample(&ds.graph, &[0]);
        let features = sub.extract_features(&ds.features);
        let a = template.instantiate(sub.graph(), &features).unwrap();
        let b = template.instantiate(sub.graph(), &features).unwrap();
        assert!(Arc::ptr_eq(&a.plan().model, &b.plan().model));
        match (&a.plan().calibration, &b.plan().calibration) {
            (Some(x), Some(y)) => assert!(Arc::ptr_eq(x, y)),
            (None, None) => {}
            _ => panic!("instances must agree on calibration"),
        }
    }
}
