//! The Session: amortized serving of inference requests over one plan.
//!
//! A session holds everything reusable across requests for a fixed graph
//! topology — the functional executor with its pre-normalized adjacency
//! matrices, one `Analyzer`/`Scheduler` pair per mapping strategy, and the
//! report scratch buffers — so a request performs **zero recompilation**:
//! only the runtime work of Fig. 3 runs per request (functional kernel
//! execution, runtime sparsity profiling, kernel-to-primitive mapping and
//! task scheduling).  This mirrors the paper's serving model, where the
//! compiled IR lives on the FPGA and each inference only moves the new
//! feature matrix across PCIe.

use crate::backend::ModeledAccelBackend;
use crate::error::DynasparseError;
use crate::planner::CompiledPlan;
use crate::report::{InferenceReport, KernelReport, StrategyRun};
use dynasparse_accel::{cycles_to_ms, ComputationCore, SoftProcessorModel};
use dynasparse_compiler::KernelKind;
use dynasparse_graph::FeatureMatrix;
use dynasparse_matrix::{BlockGrid, DensityProfile, DispatchPolicy, MatrixError};
use dynasparse_model::{
    BackendKind, DensityTrace, KernelArena, KernelDispatcher, ReferenceExecutor, StageDensity,
    StageOp,
};
use dynasparse_runtime::{
    pricing, Analyzer, KernelAnalysis, MappingStrategy, OperandProfiles, PricingCache,
    PricingCacheMode, PricingKey, RuntimeOverhead, Scheduler, SharedPricingTier,
};
use dynasparse_telemetry::{CounterId, GaugeId, Registry, SessionTelemetry};
use std::sync::Arc;
use std::time::Instant;

/// Environment variable force-disabling online recalibration (`0` / `off` /
/// `false`), regardless of
/// [`HostExecutionOptions::recalibrate`](crate::HostExecutionOptions).
pub const RECALIBRATE_ENV: &str = "DYNASPARSE_RECALIBRATE";

/// Accepted band of the per-primitive measured/predicted drift EWMA
/// (`measured_ms / predicted_ms`, see
/// [`DriftTracker`](dynasparse_telemetry::DriftTracker)).  A finite gauge
/// outside the band after a served request triggers one online
/// recalibration: the session rescales that primitive's calibration fit by
/// the observed ratio, swaps the rescaled fit into its dispatcher and
/// resets the gauge.
pub const DRIFT_BAND: (f64, f64) = (0.5, 2.0);

/// Reusable per-strategy state: the Analyzer is stateless and the Scheduler
/// is rewound between requests.  The kernel-report buffer is handed to each
/// request's report and re-sized ahead of the next request (reports own
/// their data, so one `Vec` per strategy is allocated per request).
struct StrategyState {
    strategy: MappingStrategy,
    analyzer: Analyzer,
    scheduler: Scheduler,
    kernels: Vec<KernelReport>,
}

/// How a session holds its plan: borrowed from the caller (the classic
/// single-threaded shape) or co-owned through an [`Arc`] (the serving
/// shape, where a `Session<'static>` is moved onto a worker thread while
/// sibling sessions share the same plan).
enum PlanHandle<'p> {
    Borrowed(&'p CompiledPlan),
    Shared(Arc<CompiledPlan>),
}

impl PlanHandle<'_> {
    fn get(&self) -> &CompiledPlan {
        match self {
            PlanHandle::Borrowed(plan) => plan,
            PlanHandle::Shared(plan) => plan,
        }
    }
}

/// A fault-injection hook run inside the execution path of every request,
/// once per kernel (with the kernel's execution-order index), *after* that
/// kernel has written its output into the session's arena.  Installed via
/// [`Session::set_fault_hook`]; a hook that panics therefore unwinds out of
/// [`Session::infer`] / [`Session::infer_batch`] mid-forward, with arena
/// slots and profile scratch in a partially-written state — exactly the
/// failure a serving supervisor must contain.  Serving-layer fault-injection
/// tests use this to prove worker supervision loses no request.
pub type FaultHook = Arc<dyn Fn(usize) + Send + Sync>;

/// Serving state bound to one [`CompiledPlan`].
pub struct Session<'p> {
    plan: PlanHandle<'p>,
    strategies: Vec<MappingStrategy>,
    executor: ReferenceExecutor,
    soft: SoftProcessorModel,
    states: Vec<StrategyState>,
    density_scratch: Vec<StageDensity>,
    /// The dispatching kernel engine (mode-picked host kernels + arena);
    /// `None` when `EngineOptions::host.dispatch` is off, in which case
    /// requests run the fixed-kernel reference path.
    dispatcher: Option<KernelDispatcher>,
    /// Plan-sized ping-pong feature buffers reused by every request;
    /// allocated only when the dispatcher is (legacy sessions never touch
    /// them, and the buffers are plan-sized).
    arena: Option<KernelArena>,
    /// One reusable runtime sparsity profile per compiled kernel, refit in
    /// place per request (no per-kernel allocation on the dispatch path).
    profile_scratch: Vec<DensityProfile>,
    /// One cached profiling grid per compiled kernel: the grid depends only
    /// on the plan topology and the kernel's input width, so it is derived
    /// on the first request and reused by every later request (and by every
    /// request of a batch) instead of being re-derived per kernel call.
    grid_scratch: Vec<Option<BlockGrid>>,
    /// Batch-sized arena of the fused [`Session::infer_batch`] path; sized
    /// lazily for the largest batch seen (or eagerly via
    /// [`Session::reserve_batch`]) and reused across micro-batches.  `None`
    /// until the first fused batch, and always `None` when dispatch or
    /// batch fusion is off.
    batch_arena: Option<KernelArena>,
    /// One reusable per-request profile per batch slot (fused path): each
    /// kernel's batch-wide profiling pass refits these in place.
    batch_profile_scratch: Vec<DensityProfile>,
    /// Reusable per-request output nnz counts of the fused path.
    batch_nnz_scratch: Vec<usize>,
    /// Per kernel: the later kernel whose input profile doubles as this
    /// kernel's output counts (see [`output_deferral_map`]); `None` means
    /// the fused path counts the output directly.
    defer_out: Vec<Option<usize>>,
    /// Inverse of `defer_out`: at kernel `t`, the earlier kernel whose
    /// deferred output densities resolve from `t`'s input profiles.
    out_source_for: Vec<Option<usize>>,
    /// The session's telemetry bundle: counters/histograms through a writer
    /// shard of a [`Registry`] (the process-global one by default), plus the
    /// kernel-span flight recorder and drift tracker.  Costs one predictable
    /// branch per call site when the registry level is `off`.
    telemetry: SessionTelemetry,
    /// Fault-injection hook run per executed kernel (see [`FaultHook`]);
    /// `None` (the default) costs one branch per kernel.
    fault_hook: Option<FaultHook>,
    /// Execute dispatched kernels as row-block loops over the compiler
    /// partition (`HostExecutionOptions::block_dispatch`).
    block_dispatch: bool,
    /// Drift-triggered online recalibration enabled: the options flag gated
    /// by [`RECALIBRATE_ENV`], resolved once at build.
    recalibrate: bool,
    /// Pricing-cache mode: the options value gated by
    /// [`PRICING_CACHE_ENV`](dynasparse_runtime::PRICING_CACHE_ENV),
    /// resolved once at build.
    pricing_mode: PricingCacheMode,
    /// Per-session pricing cache (`None` when the mode is `Off` or the
    /// session prices no strategies).  Values are pure functions of their
    /// keys, so reuse never depends on request order or cache state.
    pricing_cache: Option<PricingCache>,
    /// Optional read-mostly tier shared across the serve workers of one
    /// runtime; consulted on a local miss, published to on a fresh pass.
    pricing_tier: Option<Arc<SharedPricingTier>>,
    /// Fingerprint of the dispatcher's current calibration; refreshed when
    /// online recalibration swaps a rescaled fit in, which makes every key
    /// minted under the old fit unreachable.
    calib_fingerprint: u64,
    /// Fingerprint of the plan's static operands (adjacency + weight
    /// profiles); recomputed on rebind so template instances of the same
    /// subgraph class share pricing while different topologies never do.
    statics_fingerprint: u64,
    /// Reusable scratch holding the bucket-representative quantization of
    /// the current kernel's feature profile (bucketed-mode misses only).
    quant_scratch: DensityProfile,
    requests_served: usize,
}

/// Per-request bookkeeping captured while a batch executes fused: everything
/// the report replay needs, in kernel execution order.
struct BatchRecord {
    stages: Vec<StageDensity>,
    /// `(input_density, output_density)` per kernel.
    kernel_io: Vec<(f64, f64)>,
    /// One analysis per kernel per strategy, kernel-major
    /// (`kernel * num_strategies + strategy`).  `Arc`s so same-key requests
    /// of one fused batch share a single Analyzer pass through the pricing
    /// cache instead of cloning the task-cycle vectors.
    analyses: Vec<Arc<KernelAnalysis>>,
}

/// For every kernel (execution order), the later kernel whose **input** is
/// the same unmodified matrix as this kernel's output — either a kernel in
/// the same layer reading `Kernel(this)`, or (for a layer's sole
/// contributor with no output activation) the first kernel of the next
/// layer.  Since reports are assembled by replay after the forward pass,
/// the fused batch path defers those kernels' output-density counts and
/// recovers them for free from the target kernel's input profiles, instead
/// of paying a separate counting pass over the batch operand.
fn output_deferral_map(model: &dynasparse_model::GnnModel) -> Vec<Option<usize>> {
    let mut layer_bases = Vec::with_capacity(model.layers.len());
    let mut base = 0usize;
    for layer in &model.layers {
        layer_bases.push(base);
        base += layer.kernels.len();
    }
    let mut map = Vec::with_capacity(base);
    for (l, layer) in model.layers.iter().enumerate() {
        let contributors = layer
            .kernels
            .iter()
            .filter(|k| k.contributes_to_output)
            .count();
        for (ki, spec) in layer.kernels.iter().enumerate() {
            let in_layer = layer
                .kernels
                .iter()
                .enumerate()
                .skip(ki + 1)
                .find(
                    |(_, k)| matches!(k.input, dynasparse_model::KernelInput::Kernel(j) if j == ki),
                )
                .map(|(kj, _)| layer_bases[l] + kj);
            let target = in_layer.or_else(|| {
                let sole = contributors == 1 && spec.contributes_to_output;
                let next_reads_layer_input = model.layers.get(l + 1).is_some_and(|next| {
                    matches!(
                        next.kernels[0].input,
                        dynasparse_model::KernelInput::LayerInput
                    )
                });
                (sole && layer.output_activation.is_none() && next_reads_layer_input)
                    .then(|| layer_bases[l + 1])
            });
            map.push(target);
        }
    }
    map
}

/// Default per-session pricing-cache capacity: several density-bucket
/// working sets per (kernel, strategy) pair, floored so small plans still
/// ride out bursty density mixes without thrashing.
fn default_pricing_capacity(num_kernels: usize, num_strategies: usize) -> usize {
    (num_kernels * num_strategies.max(1) * 8).max(256)
}

/// A session that co-owns its plan and therefore has no borrowed lifetime;
/// this is what worker threads of a serving runtime hold.  Produced by
/// [`Session::shared`] / [`CompiledPlan::session_shared`].
pub type OwnedSession = Session<'static>;

// Worker threads move owned sessions across thread boundaries.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<OwnedSession>();
};

impl<'p> Session<'p> {
    /// Opens a session over `plan`, pricing every strategy in `strategies`
    /// on each request.  Equivalent to
    /// [`CompiledPlan::session`](crate::CompiledPlan::session).
    pub fn new(plan: &'p CompiledPlan, strategies: &[MappingStrategy]) -> Self {
        let executor = ReferenceExecutor::from_prepared(
            Arc::clone(&plan.model),
            Arc::clone(&plan.adjacencies),
        );
        Self::build(PlanHandle::Borrowed(plan), executor, strategies)
    }

    /// Opens a session that co-owns `plan`, so the session can outlive the
    /// caller's borrow and be moved onto another thread.  Equivalent to
    /// [`CompiledPlan::session_shared`](crate::CompiledPlan::session_shared).
    pub fn shared(plan: Arc<CompiledPlan>, strategies: &[MappingStrategy]) -> OwnedSession {
        let executor = ReferenceExecutor::from_prepared(
            Arc::clone(&plan.model),
            Arc::clone(&plan.adjacencies),
        );
        Session::<'static>::build(PlanHandle::Shared(plan), executor, strategies)
    }

    fn build(
        plan: PlanHandle<'p>,
        executor: ReferenceExecutor,
        strategies: &[MappingStrategy],
    ) -> Session<'p> {
        let accelerator = plan.get().options().accelerator;
        let host = plan.get().options().host;
        let core = ComputationCore::new(accelerator);
        let num_kernels = plan.get().program().kernels.len();
        let num_vertices = plan.get().num_vertices();
        let states = strategies
            .iter()
            .map(|&strategy| StrategyState {
                strategy,
                analyzer: Analyzer::new(core, strategy),
                scheduler: Scheduler::new(accelerator.num_cores),
                kernels: Vec::with_capacity(num_kernels),
            })
            .collect();
        let dispatcher = host.dispatch.then(|| {
            // Calibrated when the plan carries a measured host fit; the
            // accelerator's Table IV regions otherwise (they also stay the
            // sparse-output threshold and degenerate-prediction fallback).
            let mut dispatcher = executor.dispatcher_calibrated(
                DispatchPolicy::from_regions(accelerator.psys),
                plan.get().calibration.clone(),
                host.parallel,
            );
            // The modeled-accelerator backend swaps in over the same weight
            // caches and retention policy: routing and pricing change,
            // results stay bit-identical.
            if host.backend == BackendKind::ModeledAccel {
                dispatcher.set_backend(Arc::new(ModeledAccelBackend::new(&accelerator)));
            }
            dispatcher
        });
        let recalibrate = host.recalibrate
            && !matches!(
                std::env::var(RECALIBRATE_ENV)
                    .ok()
                    .as_deref()
                    .map(str::trim),
                Some("0") | Some("off") | Some("false")
            );
        let pricing_mode = PricingCacheMode::resolve(host.pricing_cache);
        let pricing_cache =
            (pricing_mode != PricingCacheMode::Off && !strategies.is_empty()).then(|| {
                PricingCache::with_capacity(default_pricing_capacity(num_kernels, strategies.len()))
            });
        let calib_fingerprint = pricing::calibration_fingerprint(plan.get().calibration.as_deref());
        let statics = &plan.get().program().static_sparsity;
        let statics_fingerprint =
            pricing::statics_fingerprint(&statics.adjacency, &statics.weights);
        let arena = dispatcher.is_some().then(|| executor.arena(num_vertices));
        let defer_out = output_deferral_map(executor.model());
        let mut out_source_for = vec![None; defer_out.len()];
        for (k, target) in defer_out.iter().enumerate() {
            if let Some(t) = target {
                debug_assert!(out_source_for[*t].is_none(), "deferral targets are unique");
                out_source_for[*t] = Some(k);
            }
        }
        Session {
            plan,
            strategies: strategies.to_vec(),
            executor,
            soft: SoftProcessorModel::from_config(&accelerator),
            states,
            density_scratch: Vec::with_capacity(num_kernels),
            dispatcher,
            arena,
            profile_scratch: vec![DensityProfile::default(); num_kernels],
            grid_scratch: (0..num_kernels).map(|_| None).collect(),
            batch_arena: None,
            batch_profile_scratch: Vec::new(),
            batch_nnz_scratch: Vec::new(),
            defer_out,
            out_source_for,
            telemetry: SessionTelemetry::from_global(),
            fault_hook: None,
            block_dispatch: host.block_dispatch,
            recalibrate,
            pricing_mode,
            pricing_cache,
            pricing_tier: None,
            calib_fingerprint,
            statics_fingerprint,
            quant_scratch: DensityProfile::default(),
            requests_served: 0,
        }
    }

    /// The plan this session serves from.
    pub fn plan(&self) -> &CompiledPlan {
        self.plan.get()
    }

    /// Rebinds the session to a different plan, keeping every buffer the new
    /// plan can reuse.
    ///
    /// This is the serving primitive behind per-request subgraph
    /// instantiation: a worker holds one session and rebinds it to each
    /// request's freshly instantiated plan instead of constructing a new
    /// session (and its arena) per request.  When the new plan shares the
    /// old plan's model and calibration by pointer — which is exactly what
    /// [`ModelTemplate::instantiate`](crate::ModelTemplate::instantiate)
    /// produces — the dispatcher, the kernel arenas, and the per-kernel
    /// profile scratch survive the rebind: arena buffers are *re-shaped* to
    /// the new topology on the next request (growing capacity at most once
    /// per high-water mark, never shrinking), and the cached profiling grids
    /// refit themselves through the existing per-request shape check.
    /// Otherwise the session state is rebuilt from scratch, as if freshly
    /// opened over the new plan.
    ///
    /// Either way `requests_served` continues counting across the rebind,
    /// and serving from the rebound session is bit-identical to a fresh
    /// session over the same plan (the retained state is pure capacity).
    pub fn rebind(&mut self, plan: Arc<CompiledPlan>) {
        let old = self.plan.get();
        let same_model = Arc::ptr_eq(&old.model, &plan.model);
        let same_calibration = match (&old.calibration, &plan.calibration) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            (None, None) => true,
            _ => false,
        };
        let executor = ReferenceExecutor::from_prepared(
            Arc::clone(&plan.model),
            Arc::clone(&plan.adjacencies),
        );
        // `EngineOptions` carries no equality; a shared model pointer only
        // arises when both plans came from the same template (or the same
        // `Arc` clone), which fixes the options and the dispatcher inputs.
        if same_model && same_calibration {
            self.telemetry
                .registry()
                .incr(self.telemetry.shard(), CounterId::RebindReuse);
            self.executor = executor;
            self.plan = PlanHandle::Shared(plan);
            for state in &mut self.states {
                state.scheduler.reset();
                state.kernels.clear();
            }
            self.density_scratch.clear();
            // The topology changed under the same model/calibration: refresh
            // the static-operand fingerprint so pricing keys separate the
            // new subgraph from the old.  The cache itself survives — it is
            // content-addressed, so a rebind back to an equal topology (or
            // another instance of the same subgraph class) hits again while
            // a different topology can only miss.
            let statics = &self.plan.get().program().static_sparsity;
            self.statics_fingerprint =
                pricing::statics_fingerprint(&statics.adjacency, &statics.weights);
            return;
        }
        let strategies = std::mem::take(&mut self.strategies);
        let served = self.requests_served;
        // Rebuilding replaces every field; carry the telemetry bundle (its
        // registry binding, pinned shard and retained spans) across, the same
        // way the request counter survives.  The shared pricing tier is
        // runtime wiring, not plan state, so it also survives; the local
        // pricing cache does not (the new plan's calibration may differ, and
        // `build` re-derives both fingerprints from the new plan).
        let telemetry = std::mem::replace(&mut self.telemetry, SessionTelemetry::from_global());
        let tier = self.pricing_tier.take();
        *self = Session::build(PlanHandle::Shared(plan), executor, &strategies);
        self.telemetry = telemetry;
        self.pricing_tier = tier;
        self.telemetry
            .registry()
            .incr(self.telemetry.shard(), CounterId::RebindRebuild);
        self.requests_served = served;
    }

    /// Rebuilds every piece of per-session execution state from the bound
    /// plan, as if the session had been freshly opened — keeping the
    /// strategies, the telemetry bundle (registry binding, pinned shard)
    /// and the `requests_served` counter.
    ///
    /// This is the recovery primitive a serving supervisor calls after a
    /// panic unwound out of [`Session::infer`] / [`Session::infer_batch`]
    /// (e.g. through a [`FaultHook`]).  **Unwind-safety rule:** a panic
    /// mid-forward may leave arena slots, profile scratch and scheduler
    /// state partially written; none of that state is self-healing, so the
    /// session must not serve again until it is rebuilt (or dropped).  The
    /// per-request resets in `infer` clear scheduler/report scratch, but
    /// arena buffer *shapes* and cached grids can be left mid-transition —
    /// rebuilding discards them wholesale.  Any installed fault hook is
    /// cleared.
    pub fn rebuild_after_panic(&mut self) {
        let strategies = std::mem::take(&mut self.strategies);
        let served = self.requests_served;
        let telemetry = std::mem::replace(&mut self.telemetry, SessionTelemetry::from_global());
        let plan = match &self.plan {
            PlanHandle::Borrowed(p) => PlanHandle::Borrowed(p),
            PlanHandle::Shared(p) => PlanHandle::Shared(Arc::clone(p)),
        };
        let executor = ReferenceExecutor::from_prepared(
            Arc::clone(&plan.get().model),
            Arc::clone(&plan.get().adjacencies),
        );
        let tier = self.pricing_tier.take();
        *self = Session::build(plan, executor, &strategies);
        self.telemetry = telemetry;
        // The shared tier holds only key-pure analyses, so a panicked
        // forward cannot have poisoned it; the rebuilt local cache starts
        // fresh.
        self.pricing_tier = tier;
        self.requests_served = served;
    }

    /// Installs (or clears) the per-kernel [`FaultHook`].  Serving layers
    /// use a panicking hook to inject faults inside the kernel execution
    /// path; after a caught panic the session must be recovered with
    /// [`Session::rebuild_after_panic`] before serving again.
    pub fn set_fault_hook(&mut self, hook: Option<FaultHook>) {
        self.fault_hook = hook;
    }

    /// The strategies priced on every request, in request order.
    pub fn strategies(&self) -> &[MappingStrategy] {
        &self.strategies
    }

    /// The pricing-cache mode the session resolved at build (options value
    /// gated by `DYNASPARSE_PRICING_CACHE`).
    pub fn pricing_mode(&self) -> PricingCacheMode {
        self.pricing_mode
    }

    /// Attaches (or detaches) a shared pricing tier.  Serve runtimes hand
    /// every worker session the same tier so a profile priced by one worker
    /// is a cache hit for all of them; safe because cached analyses are
    /// pure functions of their keys.
    pub fn set_pricing_tier(&mut self, tier: Option<Arc<SharedPricingTier>>) {
        self.pricing_tier = tier;
    }

    /// Replaces the session pricing cache with a fresh one of (at least)
    /// `capacity` slots.  A no-op when the cache is disabled.  Mainly a
    /// test/tuning knob: a tiny capacity forces steady-state eviction.
    pub fn set_pricing_capacity(&mut self, capacity: usize) {
        if self.pricing_cache.is_some() {
            self.pricing_cache = Some(PricingCache::with_capacity(capacity));
        }
    }

    /// Number of requests served so far.
    pub fn requests_served(&self) -> usize {
        self.requests_served
    }

    /// The session's telemetry bundle (flight recorder, drift tracker,
    /// registry handle).
    pub fn telemetry(&self) -> &SessionTelemetry {
        &self.telemetry
    }

    /// Mutable access to the telemetry bundle (e.g. to clear the flight
    /// recorder between probes).
    pub fn telemetry_mut(&mut self) -> &mut SessionTelemetry {
        &mut self.telemetry
    }

    /// Rebinds the session's telemetry to `registry`, replacing the
    /// process-global default.  Serving runtimes call this so every worker
    /// session publishes into the runtime's registry.
    pub fn set_telemetry(&mut self, registry: Arc<Registry>) {
        self.telemetry = SessionTelemetry::new(registry);
    }

    /// Pins the telemetry writer shard (serve workers pin their worker index
    /// so per-shard counters read as per-worker counters).
    pub fn set_telemetry_shard(&mut self, shard: usize) {
        self.telemetry.set_shard(shard);
    }

    /// Serves one inference request: runs the model functionally on
    /// `features`, profiles the runtime sparsity kernel by kernel, and prices
    /// every session strategy from the single functional pass.
    ///
    /// The request must match the plan's topology: `features` needs
    /// [`CompiledPlan::num_vertices`] rows and [`CompiledPlan::input_dim`]
    /// columns.
    pub fn infer(&mut self, features: &FeatureMatrix) -> Result<InferenceReport, DynasparseError> {
        self.validate_request(features, "session infer")?;
        self.infer_validated(features)
    }

    /// Checks one request's shape against the plan topology.
    fn validate_request(
        &self,
        features: &FeatureMatrix,
        op: &'static str,
    ) -> Result<(), DynasparseError> {
        let plan = self.plan.get();
        let expected = (plan.num_vertices(), plan.input_dim());
        if features.shape() != expected {
            return Err(MatrixError::ShapeMismatch {
                op,
                lhs: features.shape(),
                rhs: expected,
            }
            .into());
        }
        Ok(())
    }

    /// Serves one already-validated request (see [`Session::infer`]).
    fn infer_validated(
        &mut self,
        features: &FeatureMatrix,
    ) -> Result<InferenceReport, DynasparseError> {
        let plan = self.plan.get();
        let program = plan.program();
        let spec = program.partition;
        let num_vertices = plan.num_vertices();
        let num_kernels = program.kernels.len();
        // The clears matter on the recovery path: a request that failed
        // mid-execution leaves partial kernel reports and density stages
        // behind, which the next request must not inherit.
        for state in &mut self.states {
            state.scheduler.reset();
            state.kernels.clear();
        }
        self.density_scratch.clear();

        let states = &mut self.states;
        let density_stages = &mut self.density_scratch;
        let profile_scratch = &mut self.profile_scratch;
        let grid_scratch = &mut self.grid_scratch;
        let executor = &self.executor;
        let dispatcher = self.dispatcher.as_ref();
        let arena = self.arena.as_mut();
        let dispatch_enabled = dispatcher.is_some();
        let telemetry = &mut self.telemetry;
        // Phase stopwatches (profile refit, Analyzer/Scheduler pricing) only
        // run when the registry records; the accumulators are plain locals so
        // the timed path stays allocation-free.
        let probe = telemetry.enabled();
        let fault_hook = self.fault_hook.clone();
        let pricing_mode = self.pricing_mode;
        let mut pricing_cache = self.pricing_cache.as_mut();
        let pricing_tier = self.pricing_tier.clone();
        let calib_fp = self.calib_fingerprint;
        let statics_fp = self.statics_fingerprint;
        let quant_scratch = &mut self.quant_scratch;
        let mut profile_ns = 0u64;
        let mut pricing_ns = 0u64;
        let mut pricing_hits = 0u64;
        let mut pricing_misses = 0u64;
        let mut pricing_evictions = 0u64;
        let mut pricing_hit_ns = 0u64;
        let mut pricing_miss_ns = 0u64;
        let mut kernel_counter = 0usize;
        let mut on_kernel = |_layer: usize,
                             _ki: usize,
                             spec_kernel: &dynasparse_model::KernelSpec,
                             input: &FeatureMatrix,
                             out: &FeatureMatrix| {
            // Fault injection: runs after the kernel wrote its output, so a
            // panicking hook unwinds with the arena mid-request.
            if let Some(hook) = &fault_hook {
                hook(kernel_counter);
            }
            let compiled = &program.kernels[kernel_counter];
            debug_assert_eq!(
                compiled.ir.kind == KernelKind::Aggregate,
                spec_kernel.op.is_aggregate(),
                "compiled kernel order must match execution order"
            );
            // Runtime sparsity profiling of the kernel's input feature
            // matrix at the granularity its execution scheme uses.  The
            // grid depends only on the (fixed) topology and kernel input
            // width, so it is fit once and reused by every later request.
            let profile_started = probe.then(Instant::now);
            let grid_slot = &mut grid_scratch[kernel_counter];
            let input_shape = (num_vertices, input.dim());
            if grid_slot.as_ref().map(BlockGrid::shape) != Some(input_shape) {
                *grid_slot = Some(match compiled.ir.kind {
                    KernelKind::Aggregate => spec.feature_grid(num_vertices, input.dim()),
                    KernelKind::Update => spec.subfiber_grid(num_vertices, input.dim()),
                });
            }
            let grid = grid_slot.as_ref().expect("grid fit above");
            // The dispatch path refits a per-kernel reusable profile (no
            // allocation); the legacy path keeps its allocating profiler.
            let owned_profile;
            let feature_profile: &DensityProfile = if dispatch_enabled {
                let slot = &mut profile_scratch[kernel_counter];
                input.density_profile_into(grid, slot);
                slot
            } else {
                owned_profile = input.density_profile(grid);
                &owned_profile
            };
            if let Some(started) = profile_started {
                profile_ns += started.elapsed().as_nanos() as u64;
            }
            let profiles = OperandProfiles {
                adjacency: &program.static_sparsity.adjacency,
                weights: &program.static_sparsity.weights,
                features: feature_profile,
            };
            let pricing_started = probe.then(Instant::now);
            // The strategy-free part of the pricing key hashes the profile
            // once per kernel; strategies fold in per state below.  The
            // bucket-representative quantization is also shared by every
            // strategy's miss of this kernel.
            let base_key = pricing_cache.is_some().then(|| {
                PricingKey::base(
                    calib_fp,
                    statics_fp,
                    kernel_counter,
                    pricing_mode,
                    feature_profile,
                )
            });
            let mut quantized = false;
            for state in states.iter_mut() {
                let state_started = probe.then(Instant::now);
                let mut hit = false;
                let analysis: Arc<KernelAnalysis> = match (&mut pricing_cache, base_key) {
                    (Some(cache), Some(base)) => {
                        let key = base.with_strategy(state.strategy);
                        let mut cached = cache.get(&key);
                        if cached.is_none() {
                            if let Some(tier) = pricing_tier.as_deref() {
                                if let Some(a) = tier.get(&key) {
                                    if cache.insert(key, Arc::clone(&a)) {
                                        pricing_evictions += 1;
                                    }
                                    cached = Some(a);
                                }
                            }
                        }
                        match cached {
                            Some(a) => {
                                hit = true;
                                a
                            }
                            None => {
                                // Determinism invariant: a bucketed-mode miss
                                // prices the bucket's canonical representative
                                // profile, never the first-seen exact one, so
                                // the cached value is a pure function of the
                                // key (order-, worker- and cache-state-free).
                                let a = if pricing_mode == PricingCacheMode::Bucketed {
                                    if !quantized {
                                        pricing::quantize_profile_into(
                                            feature_profile,
                                            quant_scratch,
                                        );
                                        quantized = true;
                                    }
                                    let priced = OperandProfiles {
                                        adjacency: &program.static_sparsity.adjacency,
                                        weights: &program.static_sparsity.weights,
                                        features: &*quant_scratch,
                                    };
                                    Arc::new(state.analyzer.analyze_kernel(compiled, &priced))
                                } else {
                                    Arc::new(state.analyzer.analyze_kernel(compiled, &profiles))
                                };
                                if cache.insert(key, Arc::clone(&a)) {
                                    pricing_evictions += 1;
                                }
                                if let Some(tier) = pricing_tier.as_deref() {
                                    if tier.publish(key, Arc::clone(&a)) {
                                        pricing_evictions += 1;
                                    }
                                }
                                a
                            }
                        }
                    }
                    _ => Arc::new(state.analyzer.analyze_kernel(compiled, &profiles)),
                };
                let schedule = state.scheduler.schedule_kernel(compiled.ir.id, &analysis);
                state.kernels.push(KernelReport {
                    kernel_id: compiled.ir.id,
                    layer_id: compiled.ir.layer_id,
                    kind: compiled.ir.kind,
                    cycles: schedule.cycles(),
                    utilization: schedule.utilization,
                    decisions: analysis.decisions,
                    mix: analysis.mix,
                    input_density: input.density(),
                    output_density: out.density(),
                });
                if base_key.is_some() {
                    if hit {
                        pricing_hits += 1;
                    } else {
                        pricing_misses += 1;
                    }
                }
                if let Some(started) = state_started {
                    let ns = started.elapsed().as_nanos() as u64;
                    if base_key.is_some() {
                        if hit {
                            pricing_hit_ns += ns;
                        } else {
                            pricing_miss_ns += ns;
                        }
                    }
                }
            }
            if let Some(started) = pricing_started {
                pricing_ns += started.elapsed().as_nanos() as u64;
            }
            density_stages.push(StageDensity {
                layer: compiled.ir.layer_id - 1,
                kernel: compiled.ir.kernel_in_layer,
                op: match compiled.ir.kind {
                    KernelKind::Aggregate => StageOp::Aggregate,
                    KernelKind::Update => StageOp::Update,
                },
                density: out.density(),
            });
            kernel_counter += 1;
        };
        telemetry.begin_request();
        let block_dispatch = self.block_dispatch;
        let mut predicted_kernel_ms = 0.0;
        let output = match (dispatcher, arena) {
            (Some(dispatcher), Some(arena)) => {
                // The dispatching engine: mode-picked host kernels writing
                // into the session's arena (zero per-kernel allocations),
                // block-granular over the compiler partition by default,
                // probed per dispatch when telemetry is on.
                predicted_kernel_ms = executor.forward_dispatch_blocked_probed(
                    features,
                    dispatcher,
                    arena,
                    block_dispatch.then_some(&spec),
                    Some(&mut *telemetry),
                    |l, k, s, i, o| on_kernel(l, k, s, i, o),
                )?;
                arena.output().clone()
            }
            _ => executor.forward_with(features, |l, k, s, i, o| on_kernel(l, k, s, i, o))?,
        };
        if probe {
            telemetry.record_request_phases(profile_ns, pricing_ns);
            telemetry.record_pricing_cache(
                pricing_hits,
                pricing_misses,
                pricing_evictions,
                pricing_hit_ns,
                pricing_miss_ns,
            );
        }

        let freq = plan.options().accelerator.frequency_mhz;
        let compile_ms = plan.compile_ms();
        let data_movement_ms = plan.request_data_movement_ms(features.size_bytes());
        let feature_movement_ms = plan.feature_movement_ms(features.size_bytes());
        let runs = self
            .states
            .iter_mut()
            .map(|state| {
                let total_cycles = state.scheduler.total_cycles();
                let latency_ms = cycles_to_ms(total_cycles, freq);
                let decisions: usize = state.kernels.iter().map(|k| k.decisions).sum();
                let overhead = RuntimeOverhead::from_counts(
                    &self.soft,
                    decisions,
                    state.scheduler.total_schedule_events(),
                    latency_ms * 1e-3,
                );
                StrategyRun {
                    strategy: state.strategy,
                    average_utilization: state.scheduler.average_utilization(),
                    kernels: std::mem::replace(&mut state.kernels, Vec::with_capacity(num_kernels)),
                    total_cycles,
                    latency_ms,
                    end_to_end_ms: compile_ms + data_movement_ms + latency_ms,
                    overhead,
                }
            })
            .collect();

        self.maybe_recalibrate();
        let request_index = self.requests_served;
        self.requests_served += 1;
        Ok(InferenceReport {
            request_index,
            data_movement_ms,
            feature_movement_ms,
            density_trace: DensityTrace {
                input_density: features.density(),
                stages: std::mem::replace(
                    &mut self.density_scratch,
                    Vec::with_capacity(num_kernels),
                ),
            },
            runs,
            predicted_kernel_ms,
            output_embeddings: output,
        })
    }

    /// Online drift-triggered recalibration (host backend only): after a
    /// served request, any per-primitive drift gauge
    /// (measured/predicted EWMA, see
    /// [`DriftTracker`](dynasparse_telemetry::DriftTracker)) that is finite
    /// but outside [`DRIFT_BAND`] rescales that primitive's calibration fit
    /// by the observed ratio; the rescaled calibration is swapped into the
    /// dispatcher in one step and the tripped gauges reset to `1.0`.
    /// Decisions and predictions change, results never do (the calibration
    /// only picks among bit-identical routes).
    fn maybe_recalibrate(&mut self) {
        if !self.recalibrate {
            return;
        }
        let Some(dispatcher) = self.dispatcher.as_mut() else {
            return;
        };
        if dispatcher.backend_kind() != BackendKind::Host {
            return;
        }
        let Some(calibration) = dispatcher.calibration().cloned() else {
            return;
        };
        const GAUGES: [GaugeId; 3] = [GaugeId::DriftGemm, GaugeId::DriftSpdmm, GaugeId::DriftSpmm];
        let mut ratios = [1.0f64; 3];
        let mut drifted = false;
        let registry = Arc::clone(self.telemetry.registry());
        for (ratio, gauge) in ratios.iter_mut().zip(GAUGES) {
            let r = registry.gauge(gauge);
            if r.is_finite() && r > 0.0 && !(DRIFT_BAND.0..=DRIFT_BAND.1).contains(&r) {
                *ratio = r;
                drifted = true;
            }
        }
        if !drifted {
            return;
        }
        let mut rescaled = (*calibration).clone();
        let fits = [&mut rescaled.gemm, &mut rescaled.spdmm, &mut rescaled.spmm];
        for (fit, ratio) in fits.into_iter().zip(ratios) {
            if ratio != 1.0 {
                fit.work *= ratio;
                fit.output *= ratio;
                fit.per_row *= ratio;
            }
        }
        // The rescaled fit invalidates every cached pricing decision: the
        // fingerprint change makes old keys unreachable (also in the shared
        // tier, without a flush — sibling workers recalibrate on their own
        // schedule), and clearing the local cache returns its slots to the
        // fresh fit's working set immediately.
        let new_fingerprint = pricing::calibration_fingerprint(Some(&rescaled));
        dispatcher.recalibrate(Arc::new(rescaled));
        self.calib_fingerprint = new_fingerprint;
        if let Some(cache) = &mut self.pricing_cache {
            cache.clear();
        }
        for (gauge, ratio) in GAUGES.into_iter().zip(ratios) {
            if ratio != 1.0 {
                registry.gauge_set(gauge, 1.0);
            }
        }
        self.telemetry.record_recalibration();
    }

    /// Serves a batch of requests over the same plan, returning one report
    /// per request in order.  Compilation, adjacency normalization,
    /// analyzer/scheduler state, the arena and the per-kernel
    /// profile/grid scratch are shared across the whole batch.
    ///
    /// With the default [`HostExecutionOptions`](crate::HostExecutionOptions)
    /// (`dispatch && batch_fusion`) and two or more requests, the batch is
    /// **fused**: the per-request feature matrices are horizontally
    /// concatenated into one `m × (d·B)` operand and every kernel executes
    /// once per layer through the [`KernelDispatcher`] — which now decides
    /// from the batch operand's density and widened shape — into
    /// batch-sized [`KernelArena`] slots reused across micro-batches.
    /// Per-request reports are recovered from block views and are
    /// bit-identical to the request-by-request loop (the fallback when
    /// fusion is disabled), including density traces, strategy pricing and
    /// `request_index` (proved by `tests/integration_batch.rs`).
    ///
    /// **Every** request's shape is validated before **any** request runs:
    /// a shape-mismatched matrix anywhere in the batch fails the whole call
    /// up front (typed [`MatrixError::ShapeMismatch`], `op = "session
    /// infer_batch"`) instead of erroring midway with earlier requests
    /// already served.
    ///
    /// ```
    /// use dynasparse::{MappingStrategy, Planner};
    /// use dynasparse_graph::Dataset;
    /// use dynasparse_model::GnnModel;
    ///
    /// let dataset = Dataset::Cora.spec().generate_scaled(42, 0.1);
    /// let model = GnnModel::gcn(dataset.features.dim(), 16, dataset.spec.num_classes, 7);
    /// let plan = Planner::default().plan(&model, &dataset).unwrap();
    /// let mut session = plan.session(&[MappingStrategy::Dynamic]);
    ///
    /// // A micro-batch of three requests: one fused kernel pass per layer.
    /// let batch = vec![dataset.features.clone(); 3];
    /// let reports = session.infer_batch(&batch).unwrap();
    /// assert_eq!(reports.len(), 3);
    /// assert_eq!(reports[2].request_index, 2);
    /// // Every request got its own embeddings and strategy pricing.
    /// assert!(reports[0].run(MappingStrategy::Dynamic).unwrap().total_cycles > 0);
    /// ```
    pub fn infer_batch(
        &mut self,
        batch: &[FeatureMatrix],
    ) -> Result<Vec<InferenceReport>, DynasparseError> {
        for features in batch {
            self.validate_request(features, "session infer_batch")?;
        }
        let fused = batch.len() > 1
            && self.dispatcher.is_some()
            && self.plan.get().options().host.batch_fusion;
        if !fused {
            return batch
                .iter()
                .map(|features| self.infer_validated(features))
                .collect();
        }
        self.infer_batch_fused(batch)
    }

    /// Pre-sizes the fused-batch arena for micro-batches of up to
    /// `max_batch` requests, so serving steady state never grows a buffer
    /// mid-batch.  A no-op when dispatch or batch fusion is off (or for
    /// `max_batch < 2`); serving runtimes call this once per worker with
    /// their configured batch cap.
    pub fn reserve_batch(&mut self, max_batch: usize) {
        if self.dispatcher.is_none()
            || !self.plan.get().options().host.batch_fusion
            || max_batch < 2
        {
            return;
        }
        self.ensure_batch_arena(max_batch);
    }

    fn ensure_batch_arena(&mut self, batch: usize) {
        let num_vertices = self.plan.get().num_vertices();
        let grow = match &self.batch_arena {
            Some(arena) => arena.batch_capacity() < batch,
            None => true,
        };
        if grow {
            self.batch_arena = Some(self.executor.arena_batch(num_vertices, batch));
        }
    }

    /// The fused batch path: one `forward_dispatch_batch` pass captures
    /// per-request profiles/analyses through block views, then the reports
    /// are replayed per request — the analyzer is stateless and the
    /// scheduler replays the same kernel order with the same analyses, so
    /// every report is bit-identical to the per-request loop's.
    fn infer_batch_fused(
        &mut self,
        batch: &[FeatureMatrix],
    ) -> Result<Vec<InferenceReport>, DynasparseError> {
        let bsz = batch.len();
        self.ensure_batch_arena(bsz);
        let plan = self.plan.get();
        let program = plan.program();
        let spec = program.partition;
        let num_vertices = plan.num_vertices();
        let num_kernels = program.kernels.len();
        let num_states = self.states.len();
        // The clears matter on the recovery path (see `infer_validated`).
        for state in &mut self.states {
            state.scheduler.reset();
            state.kernels.clear();
        }
        let analyzers: Vec<Analyzer> = self.states.iter().map(|s| s.analyzer).collect();
        let mut records: Vec<BatchRecord> = (0..bsz)
            .map(|_| BatchRecord {
                stages: Vec::with_capacity(num_kernels),
                kernel_io: Vec::with_capacity(num_kernels),
                analyses: Vec::with_capacity(num_kernels * num_states),
            })
            .collect();

        if self.batch_profile_scratch.len() < bsz {
            self.batch_profile_scratch
                .resize_with(bsz, DensityProfile::default);
        }
        let batch_profiles = &mut self.batch_profile_scratch;
        let out_counts = &mut self.batch_nnz_scratch;
        let grid_scratch = &mut self.grid_scratch;
        let defer_out = &self.defer_out;
        let out_source_for = &self.out_source_for;
        let executor = &self.executor;
        let dispatcher = self
            .dispatcher
            .as_ref()
            .expect("fused path has a dispatcher");
        let arena = self.batch_arena.as_mut().expect("ensured above");
        let telemetry = &mut self.telemetry;
        let probe = telemetry.enabled();
        let fault_hook = self.fault_hook.clone();
        let pricing_mode = self.pricing_mode;
        let mut pricing_cache = self.pricing_cache.as_mut();
        let pricing_tier = self.pricing_tier.clone();
        let calib_fp = self.calib_fingerprint;
        let statics_fp = self.statics_fingerprint;
        let quant_scratch = &mut self.quant_scratch;
        let mut profile_ns = 0u64;
        let mut pricing_ns = 0u64;
        let mut pricing_hits = 0u64;
        let mut pricing_misses = 0u64;
        let mut pricing_evictions = 0u64;
        let mut pricing_hit_ns = 0u64;
        let mut pricing_miss_ns = 0u64;
        let mut kernel_counter = 0usize;
        telemetry.begin_request();
        let block_dispatch = self.block_dispatch;
        let predicted_batch_ms = executor.forward_dispatch_batch_blocked_probed(
            batch,
            dispatcher,
            arena,
            block_dispatch.then_some(&spec),
            Some(&mut *telemetry),
            |_layer, _ki, spec_kernel, views| {
                let kidx = kernel_counter;
                kernel_counter += 1;
                // Fault injection (see `FaultHook`): the fused pass executes
                // each kernel once for the whole batch, so a panicking hook
                // fails the batch — the serving supervisor then retries the
                // requests individually to isolate the poisoned one.
                if let Some(hook) = &fault_hook {
                    hook(kidx);
                }
                let compiled = &program.kernels[kidx];
                debug_assert_eq!(
                    compiled.ir.kind == KernelKind::Aggregate,
                    spec_kernel.op.is_aggregate(),
                    "compiled kernel order must match execution order"
                );
                // Grids depend on the per-request width only, so the whole
                // batch shares the cached grid.
                let in_dim = views.input_dim();
                let grid_slot = &mut grid_scratch[kidx];
                let input_shape = (num_vertices, in_dim);
                if grid_slot.as_ref().map(BlockGrid::shape) != Some(input_shape) {
                    *grid_slot = Some(match compiled.ir.kind {
                        KernelKind::Aggregate => spec.feature_grid(num_vertices, in_dim),
                        KernelKind::Update => spec.subfiber_grid(num_vertices, in_dim),
                    });
                }
                let grid = grid_slot.as_ref().expect("grid fit above");
                // One pass over the batch operands recovers every request's
                // input profile (and, for most kernels, the *previous* kernel's
                // output densities — see below); the resulting densities are
                // bit-equal to what the per-request loop computes (the same
                // integer counts divided the same way).
                let profile_started = probe.then(Instant::now);
                views.profile_inputs_into(grid, batch_profiles);
                if let Some(started) = profile_started {
                    profile_ns += started.elapsed().as_nanos() as u64;
                }
                let input_total = num_vertices * in_dim;
                // A kernel whose input is an earlier kernel's unmodified output
                // resolves that kernel's deferred output densities from the
                // profiles just fit — no separate counting pass.
                if let Some(src) = out_source_for[kidx] {
                    for (b, record) in records.iter_mut().enumerate() {
                        let d = if input_total == 0 {
                            0.0
                        } else {
                            batch_profiles[b].total_nnz() as f64 / input_total as f64
                        };
                        record.kernel_io[src].1 = d;
                        record.stages[src].density = d;
                    }
                }
                let deferred = defer_out[kidx].is_some();
                if !deferred {
                    views.output_nnz_into(out_counts);
                }
                let output_total = num_vertices * views.output_dim();
                let pricing_started = probe.then(Instant::now);
                for (b, record) in records.iter_mut().enumerate() {
                    let profiles = OperandProfiles {
                        adjacency: &program.static_sparsity.adjacency,
                        weights: &program.static_sparsity.weights,
                        features: &batch_profiles[b],
                    };
                    // Batch amortization: request `b` misses, computes and
                    // inserts; any later request of this batch whose kernel
                    // key collides hits the just-inserted entry — one
                    // Analyzer pass per distinct key per fused batch.
                    let base_key = pricing_cache.is_some().then(|| {
                        PricingKey::base(
                            calib_fp,
                            statics_fp,
                            kidx,
                            pricing_mode,
                            &batch_profiles[b],
                        )
                    });
                    let mut quantized = false;
                    for analyzer in &analyzers {
                        let state_started = probe.then(Instant::now);
                        let mut hit = false;
                        let analysis: Arc<KernelAnalysis> = match (&mut pricing_cache, base_key) {
                            (Some(cache), Some(base)) => {
                                let key = base.with_strategy(analyzer.strategy());
                                let mut cached = cache.get(&key);
                                if cached.is_none() {
                                    if let Some(tier) = pricing_tier.as_deref() {
                                        if let Some(a) = tier.get(&key) {
                                            if cache.insert(key, Arc::clone(&a)) {
                                                pricing_evictions += 1;
                                            }
                                            cached = Some(a);
                                        }
                                    }
                                }
                                match cached {
                                    Some(a) => {
                                        hit = true;
                                        a
                                    }
                                    None => {
                                        let a = if pricing_mode == PricingCacheMode::Bucketed {
                                            if !quantized {
                                                pricing::quantize_profile_into(
                                                    &batch_profiles[b],
                                                    quant_scratch,
                                                );
                                                quantized = true;
                                            }
                                            let priced = OperandProfiles {
                                                adjacency: &program.static_sparsity.adjacency,
                                                weights: &program.static_sparsity.weights,
                                                features: &*quant_scratch,
                                            };
                                            Arc::new(analyzer.analyze_kernel(compiled, &priced))
                                        } else {
                                            Arc::new(analyzer.analyze_kernel(compiled, &profiles))
                                        };
                                        if cache.insert(key, Arc::clone(&a)) {
                                            pricing_evictions += 1;
                                        }
                                        if let Some(tier) = pricing_tier.as_deref() {
                                            if tier.publish(key, Arc::clone(&a)) {
                                                pricing_evictions += 1;
                                            }
                                        }
                                        a
                                    }
                                }
                            }
                            _ => Arc::new(analyzer.analyze_kernel(compiled, &profiles)),
                        };
                        record.analyses.push(analysis);
                        if base_key.is_some() {
                            if hit {
                                pricing_hits += 1;
                            } else {
                                pricing_misses += 1;
                            }
                        }
                        if let Some(started) = state_started {
                            let ns = started.elapsed().as_nanos() as u64;
                            if base_key.is_some() {
                                if hit {
                                    pricing_hit_ns += ns;
                                } else {
                                    pricing_miss_ns += ns;
                                }
                            }
                        }
                    }
                    let input_density = if input_total == 0 {
                        0.0
                    } else {
                        batch_profiles[b].total_nnz() as f64 / input_total as f64
                    };
                    let out_density = if deferred {
                        // Patched when the consuming kernel profiles this
                        // matrix as its input.
                        f64::NAN
                    } else if output_total == 0 {
                        0.0
                    } else {
                        out_counts[b] as f64 / output_total as f64
                    };
                    record.kernel_io.push((input_density, out_density));
                    record.stages.push(StageDensity {
                        layer: compiled.ir.layer_id - 1,
                        kernel: compiled.ir.kernel_in_layer,
                        op: match compiled.ir.kind {
                            KernelKind::Aggregate => StageOp::Aggregate,
                            KernelKind::Update => StageOp::Update,
                        },
                        density: out_density,
                    });
                }
                if let Some(started) = pricing_started {
                    pricing_ns += started.elapsed().as_nanos() as u64;
                }
            },
        )?;
        if probe {
            // One fused pass served the whole batch: attribute the shared
            // phase time evenly across requests so the per-request histograms
            // stay comparable to the sequential path.
            let per = bsz.max(1) as u64;
            for _ in 0..bsz {
                telemetry.record_request_phases(profile_ns / per, pricing_ns / per);
            }
            // Cache activity is counted per lookup, not per request, so the
            // batch's aggregate records once.
            telemetry.record_pricing_cache(
                pricing_hits,
                pricing_misses,
                pricing_evictions,
                pricing_hit_ns,
                pricing_miss_ns,
            );
        }

        let freq = plan.options().accelerator.frequency_mhz;
        let compile_ms = plan.compile_ms();
        // One fused pass priced the whole batch: attribute the predicted
        // kernel milliseconds evenly across the batch's reports.
        let predicted_kernel_ms = predicted_batch_ms / bsz.max(1) as f64;
        let arena = self.batch_arena.as_ref().expect("ensured above");
        let mut reports = Vec::with_capacity(bsz);
        for (b, (features, record)) in batch.iter().zip(records).enumerate() {
            for state in &mut self.states {
                state.scheduler.reset();
                state.kernels.clear();
            }
            for (kidx, compiled) in program.kernels.iter().enumerate() {
                let (input_density, output_density) = record.kernel_io[kidx];
                debug_assert!(
                    !output_density.is_nan(),
                    "deferred output density of kernel {kidx} must have been resolved"
                );
                for (s, state) in self.states.iter_mut().enumerate() {
                    let analysis = record.analyses[kidx * num_states + s].as_ref();
                    let schedule = state.scheduler.schedule_kernel(compiled.ir.id, analysis);
                    state.kernels.push(KernelReport {
                        kernel_id: compiled.ir.id,
                        layer_id: compiled.ir.layer_id,
                        kind: compiled.ir.kind,
                        cycles: schedule.cycles(),
                        utilization: schedule.utilization,
                        decisions: analysis.decisions,
                        mix: analysis.mix,
                        input_density,
                        output_density,
                    });
                }
            }
            let data_movement_ms = plan.request_data_movement_ms(features.size_bytes());
            let feature_movement_ms = plan.feature_movement_ms(features.size_bytes());
            let runs = self
                .states
                .iter_mut()
                .map(|state| {
                    let total_cycles = state.scheduler.total_cycles();
                    let latency_ms = cycles_to_ms(total_cycles, freq);
                    let decisions: usize = state.kernels.iter().map(|k| k.decisions).sum();
                    let overhead = RuntimeOverhead::from_counts(
                        &self.soft,
                        decisions,
                        state.scheduler.total_schedule_events(),
                        latency_ms * 1e-3,
                    );
                    StrategyRun {
                        strategy: state.strategy,
                        average_utilization: state.scheduler.average_utilization(),
                        kernels: std::mem::replace(
                            &mut state.kernels,
                            Vec::with_capacity(num_kernels),
                        ),
                        total_cycles,
                        latency_ms,
                        end_to_end_ms: compile_ms + data_movement_ms + latency_ms,
                        overhead,
                    }
                })
                .collect();
            let request_index = self.requests_served;
            self.requests_served += 1;
            reports.push(InferenceReport {
                request_index,
                data_movement_ms,
                feature_movement_ms,
                density_trace: DensityTrace {
                    input_density: features.density(),
                    stages: record.stages,
                },
                runs,
                predicted_kernel_ms,
                output_embeddings: arena.output_block(b),
            });
        }
        self.maybe_recalibrate();
        Ok(reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineOptions;
    use crate::planner::Planner;
    use dynasparse_graph::Dataset;
    use dynasparse_model::{GnnModel, GnnModelKind};

    fn plan_fixture() -> (CompiledPlan, FeatureMatrix) {
        let ds = Dataset::Cora.spec().generate_scaled(21, 0.15);
        let model = GnnModel::standard(
            GnnModelKind::Gcn,
            ds.features.dim(),
            16,
            ds.spec.num_classes,
            3,
        );
        let plan = Planner::new(EngineOptions::default())
            .plan(&model, &ds)
            .unwrap();
        (plan, ds.features)
    }

    #[test]
    fn repeated_requests_are_identical_and_free_of_recompilation() {
        let (plan, features) = plan_fixture();
        let compile_ms = plan.compile_ms();
        let mut session = plan.session(&MappingStrategy::paper_strategies());
        let a = session.infer(&features).unwrap();
        let b = session.infer(&features).unwrap();
        assert_eq!(session.requests_served(), 2);
        assert_eq!(a.request_index, 0);
        assert_eq!(b.request_index, 1);
        // The plan (and with it the compile report) is untouched by serving.
        assert_eq!(plan.compile_ms(), compile_ms);
        // Deterministic serving: identical requests price identically.
        for (ra, rb) in a.runs.iter().zip(b.runs.iter()) {
            assert_eq!(ra.strategy, rb.strategy);
            assert_eq!(ra.total_cycles, rb.total_cycles);
            assert_eq!(ra.latency_ms, rb.latency_ms);
            assert_eq!(ra.total_mix(), rb.total_mix());
        }
        assert_eq!(
            a.output_embeddings.to_dense().as_slice(),
            b.output_embeddings.to_dense().as_slice()
        );
        // Steady-state accounting: the amortized request pays the feature
        // transfer only; the one-time static transfer is plan state.
        let dynamic = a.run(MappingStrategy::Dynamic).unwrap();
        let amortized = a.amortized_ms(MappingStrategy::Dynamic).unwrap();
        assert!(amortized < a.data_movement_ms + dynamic.latency_ms);
        assert!(
            (a.feature_movement_ms + plan.static_data_movement_ms() - a.data_movement_ms).abs()
                < 1e-12
        );
    }

    #[test]
    fn different_features_change_the_mapping_but_not_the_plan() {
        let (plan, features) = plan_fixture();
        let mut session = plan.session(&[MappingStrategy::Dynamic]);
        let sparse = session.infer(&features).unwrap();
        // A fully dense request over the same topology.
        let dense = FeatureMatrix::Dense(dynasparse_matrix::DenseMatrix::from_fn(
            plan.num_vertices(),
            plan.input_dim(),
            |_, _| 1.0,
        ));
        let dense_report = session.infer(&dense).unwrap();
        let s = sparse.run(MappingStrategy::Dynamic).unwrap();
        let d = dense_report.run(MappingStrategy::Dynamic).unwrap();
        // Denser input features make the dynamic mapping more expensive.
        assert!(d.total_cycles > s.total_cycles);
        assert!(d.total_mix().gemm > s.total_mix().gemm);
        // Both requests reused one plan: same partition, same kernel count.
        assert_eq!(s.kernels.len(), d.kernels.len());
    }

    #[test]
    fn batched_requests_match_sequential_requests() {
        let (plan, features) = plan_fixture();
        let mut sequential = plan.session(&[MappingStrategy::Dynamic]);
        let s0 = sequential.infer(&features).unwrap();
        let s1 = sequential.infer(&features).unwrap();
        let mut batched = plan.session(&[MappingStrategy::Dynamic]);
        let reports = batched
            .infer_batch(&[features.clone(), features.clone()])
            .unwrap();
        assert_eq!(reports.len(), 2);
        for (seq, bat) in [s0, s1].iter().zip(reports.iter()) {
            assert_eq!(
                seq.run(MappingStrategy::Dynamic).unwrap().total_cycles,
                bat.run(MappingStrategy::Dynamic).unwrap().total_cycles
            );
        }
    }

    #[test]
    fn shared_session_moves_across_threads_and_matches_borrowed() {
        let (plan, features) = plan_fixture();
        let mut borrowed = plan.session(&[MappingStrategy::Dynamic]);
        assert_eq!(borrowed.strategies(), &[MappingStrategy::Dynamic]);
        let want = borrowed.infer(&features).unwrap();

        let plan = Arc::new(plan);
        let mut owned: OwnedSession = plan.session_shared(&[MappingStrategy::Dynamic]);
        let request = features.clone();
        let got = std::thread::spawn(move || owned.infer(&request).unwrap())
            .join()
            .unwrap();

        let w = want.run(MappingStrategy::Dynamic).unwrap();
        let g = got.run(MappingStrategy::Dynamic).unwrap();
        assert_eq!(w.total_cycles, g.total_cycles);
        assert_eq!(w.latency_ms.to_bits(), g.latency_ms.to_bits());
        assert_eq!(want.output_embeddings, got.output_embeddings);
        // The plan is still usable here: sessions share it, they don't take it.
        assert_eq!(plan.num_vertices(), features.num_vertices());
    }

    #[test]
    fn opening_sessions_shares_plan_state_instead_of_cloning() {
        let (plan, _) = plan_fixture();
        let plan = Arc::new(plan);
        let sessions: Vec<OwnedSession> = (0..4)
            .map(|_| plan.session_shared(&[MappingStrategy::Dynamic]))
            .collect();
        // 4 sessions + the planner's handle: the adjacency map and model are
        // reference-counted, not deep-cloned per session.
        assert_eq!(Arc::strong_count(&plan.adjacencies), 5);
        assert_eq!(Arc::strong_count(&plan.model), 5);
        drop(sessions);
        assert_eq!(Arc::strong_count(&plan.adjacencies), 1);
    }

    #[test]
    fn batch_with_a_bad_shape_fails_before_serving_anything() {
        // A mismatched matrix anywhere in the batch must be caught by the
        // up-front validation pass: no request of the batch runs, instead
        // of earlier requests being served and a mid-batch error leaving
        // the caller with partial results.
        let (plan, features) = plan_fixture();
        let mut session = plan.session(&[MappingStrategy::Dynamic]);
        let wrong = FeatureMatrix::Dense(dynasparse_matrix::DenseMatrix::zeros(3, 5));
        let err = session
            .infer_batch(&[features.clone(), wrong, features.clone()])
            .unwrap_err();
        assert!(matches!(
            err,
            DynasparseError::Execution(MatrixError::ShapeMismatch {
                op: "session infer_batch",
                ..
            })
        ));
        assert_eq!(
            session.requests_served(),
            0,
            "no request of an invalid batch may execute"
        );
        // The session stays healthy for the next (valid) batch.
        let reports = session.infer_batch(&[features.clone(), features]).unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(session.requests_served(), 2);
    }

    #[test]
    fn default_plan_dispatches_with_a_shared_calibration() {
        let (plan, _) = plan_fixture();
        match plan.calibration() {
            Some(calibration) => assert!(calibration.is_valid()),
            // Only when the environment disables calibration explicitly.
            None => assert!(std::env::var("DYNASPARSE_CALIBRATION").is_ok()),
        }
    }

    #[test]
    fn dispatch_reports_backend_predicted_kernel_cost() {
        let (plan, features) = plan_fixture();
        let mut session = plan.session(&[MappingStrategy::Dynamic]);
        let report = session.infer(&features).unwrap();
        if plan.calibration().is_some() {
            assert!(
                report.predicted_kernel_ms > 0.0,
                "a calibrated backend must price the request"
            );
        }
        assert!(report.predicted_kernel_ms.is_finite());
        // The fused batch attributes one batch-wide sum evenly.
        let reports = session
            .infer_batch(&[features.clone(), features.clone()])
            .unwrap();
        assert_eq!(
            reports[0].predicted_kernel_ms.to_bits(),
            reports[1].predicted_kernel_ms.to_bits()
        );
    }

    #[test]
    fn drift_outside_band_triggers_one_recalibration() {
        use dynasparse_telemetry::TelemetryLevel;
        let (plan, features) = plan_fixture();
        if plan.calibration().is_none() {
            return; // calibration disabled via the environment
        }
        let mut session = plan.session(&[MappingStrategy::Dynamic]);
        let registry = Arc::new(Registry::new(TelemetryLevel::Counters));
        session.set_telemetry(registry.clone());
        // Seed the gemm drift gauge far outside the accepted band, as if the
        // measured kernels had been running 16x over their predictions.
        registry.gauge_set(GaugeId::DriftGemm, 16.0);
        session.infer(&features).unwrap();
        assert_eq!(
            registry.counter(CounterId::Recalibrations),
            1,
            "one request with a tripped gauge must recalibrate once"
        );
        // The tripped gauge was reset after the swap.
        assert!((registry.gauge(GaugeId::DriftGemm) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn recalibration_can_be_disabled_by_options() {
        use dynasparse_telemetry::TelemetryLevel;
        let ds = Dataset::Cora.spec().generate_scaled(21, 0.15);
        let model = GnnModel::standard(
            GnnModelKind::Gcn,
            ds.features.dim(),
            16,
            ds.spec.num_classes,
            3,
        );
        let mut options = EngineOptions::default();
        options.host.recalibrate = false;
        let plan = Planner::new(options).plan(&model, &ds).unwrap();
        let mut session = plan.session(&[MappingStrategy::Dynamic]);
        let registry = Arc::new(Registry::new(TelemetryLevel::Counters));
        session.set_telemetry(registry.clone());
        registry.gauge_set(GaugeId::DriftGemm, 16.0);
        session.infer(&ds.features).unwrap();
        assert_eq!(registry.counter(CounterId::Recalibrations), 0);
    }

    #[test]
    fn mismatched_request_shape_is_a_typed_execution_error() {
        let (plan, _) = plan_fixture();
        let mut session = plan.session(&[MappingStrategy::Dynamic]);
        let wrong = FeatureMatrix::Dense(dynasparse_matrix::DenseMatrix::zeros(3, 5));
        let err = session.infer(&wrong).unwrap_err();
        assert!(matches!(
            err,
            DynasparseError::Execution(MatrixError::ShapeMismatch {
                op: "session infer",
                ..
            })
        ));
        // A failed request does not count as served.
        assert_eq!(session.requests_served(), 0);
    }
}
