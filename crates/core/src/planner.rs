//! The Planner: one-time, input-independent preparation of a serving plan.
//!
//! Dynasparse's compile-time artifacts — the computation graph, the partition
//! sizes of Algorithm 9, the execution schemes of Algorithms 2/3, and the
//! static adjacency/weight sparsity profiles — do not depend on the input
//! feature matrix.  [`Planner::plan`] therefore runs them once, producing an
//! immutable [`CompiledPlan`] that any number of [`Session`]s can serve
//! inference requests from.  Only the per-request work (the runtime sparsity
//! profiling and the kernel-to-primitive mapping it drives) happens inside
//! [`Session::infer`].
//!
//! [`Session`]: crate::Session
//! [`Session::infer`]: crate::Session::infer

use crate::engine::{CostModelKind, EngineOptions};
use crate::error::{CompileError, DynasparseError};
use crate::session::Session;
use dynasparse_compiler::{compile, CompileReport, CompiledProgram};
use dynasparse_graph::{AggregatorKind, GraphDataset};
use dynasparse_matrix::{CsrMatrix, HostCalibration, PartitionSpec};
use dynasparse_model::{prepare_adjacencies, GnnModel};
use dynasparse_runtime::MappingStrategy;
use std::collections::HashMap;
use std::sync::Arc;

/// Validates a model against a dataset and compiles a serving plan.
#[derive(Debug, Clone, Default)]
pub struct Planner {
    options: EngineOptions,
}

impl Planner {
    /// Creates a planner with the given engine options.
    pub fn new(options: EngineOptions) -> Self {
        Planner { options }
    }

    /// The options the planner compiles with.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// Validates `model`, checks it against `dataset`'s graph/features, and
    /// compiles the input-independent artifacts into a [`CompiledPlan`].
    ///
    /// The dataset's feature matrix participates only in the *static*
    /// sparsity profile (`H⁰` densities of Table IX) and in the default
    /// request of [`Engine::evaluate`](crate::Engine::evaluate); the plan
    /// itself serves any feature matrix with the same shape.
    ///
    /// ```
    /// use dynasparse::{EngineOptions, MappingStrategy, Planner};
    /// use dynasparse_graph::Dataset;
    /// use dynasparse_model::GnnModel;
    ///
    /// let dataset = Dataset::Cora.spec().generate_scaled(42, 0.1);
    /// let model = GnnModel::gcn(dataset.features.dim(), 16, dataset.spec.num_classes, 7);
    ///
    /// // Compile once: the plan is immutable and input-independent.
    /// let plan = Planner::new(EngineOptions::default())
    ///     .plan(&model, &dataset)
    ///     .unwrap();
    /// assert_eq!(plan.num_vertices(), dataset.graph.num_vertices());
    /// assert!(plan.compile_ms() > 0.0);
    ///
    /// // Serve many: sessions borrow the plan and never recompile.
    /// let mut session = plan.session(&[MappingStrategy::Dynamic]);
    /// let report = session.infer(&dataset.features).unwrap();
    /// assert!(report.run(MappingStrategy::Dynamic).unwrap().total_cycles > 0);
    /// ```
    pub fn plan(
        &self,
        model: &GnnModel,
        dataset: &GraphDataset,
    ) -> Result<CompiledPlan, DynasparseError> {
        model.validate()?;
        if dataset.graph.num_vertices() == 0 {
            return Err(CompileError::EmptyGraph.into());
        }
        if dataset.features.dim() != model.input_dim {
            return Err(CompileError::FeatureDimensionMismatch {
                model_input_dim: model.input_dim,
                feature_dim: dataset.features.dim(),
            }
            .into());
        }

        // One-time compilation: computation graph, partition sizes
        // (Algorithm 9), execution schemes (Algorithms 2/3) and static
        // sparsity profiling.
        let report = compile(model, dataset, &self.options.compiler);
        // One-time graph preprocessing: normalized adjacency per aggregator.
        let adjacencies = Arc::new(prepare_adjacencies(model, &dataset.graph));
        // One-time host micro-calibration (measured at most once per
        // process; `DYNASPARSE_CALIBRATION` overrides): every session of
        // this plan — including all serving workers — shares the fit by
        // `Arc`.
        let calibration = match (self.options.host.dispatch, self.options.host.cost_model) {
            (true, CostModelKind::Calibrated) => HostCalibration::shared(),
            _ => None,
        };

        Ok(CompiledPlan {
            options: self.options.clone(),
            model: Arc::new(model.clone()),
            adjacencies,
            calibration,
            report,
        })
    }

    /// Like [`Planner::plan`], but returns the plan already wrapped in an
    /// [`Arc`], ready to be shared across serving threads.
    pub fn plan_shared(
        &self,
        model: &GnnModel,
        dataset: &GraphDataset,
    ) -> Result<Arc<CompiledPlan>, DynasparseError> {
        self.plan(model, dataset).map(Arc::new)
    }
}

/// The immutable result of planning: everything inference requests share.
///
/// A plan owns the compiled program (kernels + execution schemes), the
/// partition specification, the static sparsity profiles, the normalized
/// adjacency matrices, the model weights and the one-time data-movement
/// budget.  Create serving state with [`CompiledPlan::session`]; the plan is
/// never mutated by inference, so one plan can back many sessions.
///
/// Plans are `Send + Sync` (the model and adjacencies live behind [`Arc`]),
/// so an `Arc<CompiledPlan>` can be shared across worker threads; each
/// thread opens its own [`Session`] via [`CompiledPlan::session_shared`]
/// without copying any compiled state.
#[derive(Debug, Clone)]
pub struct CompiledPlan {
    pub(crate) options: EngineOptions,
    pub(crate) model: Arc<GnnModel>,
    pub(crate) adjacencies: Arc<HashMap<AggregatorKind, CsrMatrix>>,
    /// The measured host kernel cost model every session dispatches with;
    /// `None` when dispatch is off, the regions model was requested, or
    /// `DYNASPARSE_CALIBRATION=off`.
    pub(crate) calibration: Option<Arc<HostCalibration>>,
    pub(crate) report: CompileReport,
}

// The serving runtime relies on plans being shareable across threads; keep
// that guarantee explicit so a non-Send field is a compile error here, not
// in a downstream crate.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CompiledPlan>();
};

impl CompiledPlan {
    /// Opens a session that serves inference requests from this plan,
    /// pricing every strategy in `strategies` on each request.
    pub fn session(&self, strategies: &[MappingStrategy]) -> Session<'_> {
        Session::new(self, strategies)
    }

    /// Opens a session that co-owns this plan through the [`Arc`], so the
    /// session has no borrowed lifetime and can be moved onto another
    /// thread.  This is the entry point concurrent serving runtimes use:
    /// every worker gets `Session::shared(Arc::clone(&plan), …)`.
    pub fn session_shared(self: &Arc<Self>, strategies: &[MappingStrategy]) -> Session<'static> {
        Session::shared(Arc::clone(self), strategies)
    }

    /// The engine options the plan was compiled with.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// The model the plan was compiled for.
    pub fn model(&self) -> &GnnModel {
        &self.model
    }

    /// The measured host kernel cost model sessions of this plan dispatch
    /// with, if calibration is active (see
    /// [`CostModelKind`]).
    pub fn calibration(&self) -> Option<&Arc<HostCalibration>> {
        self.calibration.as_ref()
    }

    /// The compiled program (optimized IR).
    pub fn program(&self) -> &CompiledProgram {
        &self.report.program
    }

    /// The full compile report, produced exactly once per plan (Table IX).
    pub fn compile_report(&self) -> &CompileReport {
        &self.report
    }

    /// One-time preprocessing wall-clock time in milliseconds.
    pub fn compile_ms(&self) -> f64 {
        self.report.total_ms()
    }

    /// The partition sizes chosen by Algorithm 9.
    pub fn partition(&self) -> PartitionSpec {
        self.report.program.partition
    }

    /// Number of vertices of the planned graph topology; every request's
    /// feature matrix must have this many rows.
    pub fn num_vertices(&self) -> usize {
        self.report.program.num_vertices
    }

    /// Input feature dimension every request must match.
    pub fn input_dim(&self) -> usize {
        self.model.input_dim
    }

    /// Approximate resident bytes of the plan: the compiled static data
    /// (graph adjacency, weights, IR), the normalized per-aggregator
    /// adjacency matrices, and the static density-profile records.  This is
    /// an accounting estimate for cache byte budgets (the inputs that scale
    /// with topology and model size), not an allocator-exact measurement.
    pub fn approx_bytes(&self) -> usize {
        let program = &self.report.program;
        let adjacencies: usize = self.adjacencies.values().map(|m| m.size_bytes()).sum();
        // Each per-partition density record is counted as one (nnz, total)
        // pair plus block coordinates: 16 bytes.
        let profile_records = program.static_sparsity.num_partition_records() * 16;
        program.static_data_bytes + adjacencies + profile_records
    }

    /// PCIe milliseconds for the one-time transfer of the static data
    /// (adjacency + weights + IR).
    pub fn static_data_movement_ms(&self) -> f64 {
        self.options
            .accelerator
            .pcie_transfer_seconds(self.report.program.static_data_bytes)
            * 1e3
    }

    /// PCIe milliseconds for one request moving `feature_bytes` of input
    /// features, on top of the static transfer.
    pub fn request_data_movement_ms(&self, feature_bytes: usize) -> f64 {
        self.options
            .accelerator
            .pcie_transfer_seconds(self.report.program.static_data_bytes + feature_bytes)
            * 1e3
    }

    /// PCIe milliseconds for `feature_bytes` of input features alone — the
    /// only transfer a request pays once the plan's static data is resident
    /// on the accelerator.
    pub fn feature_movement_ms(&self, feature_bytes: usize) -> f64 {
        self.options
            .accelerator
            .pcie_transfer_seconds(feature_bytes)
            * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynasparse_graph::Dataset;
    use dynasparse_model::{GnnModelKind, ModelError};

    fn setup() -> (GnnModel, GraphDataset) {
        let ds = Dataset::Cora.spec().generate_scaled(9, 0.15);
        let model = GnnModel::standard(
            GnnModelKind::Gcn,
            ds.features.dim(),
            16,
            ds.spec.num_classes,
            3,
        );
        (model, ds)
    }

    #[test]
    fn plan_owns_the_compiled_artifacts() {
        let (model, ds) = setup();
        let plan = Planner::default().plan(&model, &ds).unwrap();
        assert_eq!(plan.program().kernels.len(), model.num_kernels());
        assert_eq!(plan.num_vertices(), ds.graph.num_vertices());
        assert_eq!(plan.input_dim(), ds.features.dim());
        assert!(plan.compile_ms() > 0.0);
        assert!(plan.partition().n1 >= plan.partition().n2);
        // Static movement is a strict subset of a full request's movement.
        let req = plan.request_data_movement_ms(ds.features.size_bytes());
        assert!(plan.static_data_movement_ms() < req);
    }

    #[test]
    fn invalid_model_fails_with_typed_error() {
        let (mut model, ds) = setup();
        model.weights.clear();
        let err = Planner::default().plan(&model, &ds).unwrap_err();
        assert!(matches!(
            err,
            DynasparseError::Model(ModelError::MissingWeight { .. })
        ));
    }

    #[test]
    fn dimension_mismatch_fails_at_plan_time() {
        let (_, ds) = setup();
        let model = GnnModel::gcn(ds.features.dim() + 1, 8, ds.spec.num_classes, 1);
        let err = Planner::default().plan(&model, &ds).unwrap_err();
        assert!(matches!(
            err,
            DynasparseError::Compile(CompileError::FeatureDimensionMismatch { .. })
        ));
    }
}
