//! The unified typed error hierarchy of the engine.
//!
//! Every fallible public entry point — [`Planner::plan`], [`Session::infer`]
//! and the compatibility wrapper [`Engine::evaluate`] — returns
//! [`DynasparseError`], which wraps the stage-specific error types:
//! [`ModelError`] for structural model validation, [`CompileError`] for
//! plan-time model/graph incompatibilities, and
//! [`MatrixError`] for functional-execution
//! failures.
//!
//! [`Planner::plan`]: crate::Planner::plan
//! [`Session::infer`]: crate::Session::infer
//! [`Engine::evaluate`]: crate::Engine::evaluate

use dynasparse_matrix::MatrixError;
use dynasparse_model::ModelError;
use std::fmt;

/// Plan-time incompatibilities between a (valid) model and a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompileError {
    /// The dataset's feature dimension does not match the model input.
    FeatureDimensionMismatch {
        /// `f⁰` the model was built for.
        model_input_dim: usize,
        /// Feature dimension of the dataset.
        feature_dim: usize,
    },
    /// The graph has no vertices, so there is nothing to partition.
    EmptyGraph,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::FeatureDimensionMismatch {
                model_input_dim,
                feature_dim,
            } => write!(
                f,
                "model expects {model_input_dim}-dimensional input features, dataset provides {feature_dim}"
            ),
            CompileError::EmptyGraph => write!(f, "dataset graph has no vertices"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Any failure of the compile-once / serve-many pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum DynasparseError {
    /// The model failed structural validation (planning stage).
    Model(ModelError),
    /// The model and dataset are incompatible (planning stage).
    Compile(CompileError),
    /// A functional kernel execution failed (serving stage) — e.g. a request
    /// feature matrix whose shape does not match the compiled plan.
    Execution(MatrixError),
}

impl fmt::Display for DynasparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DynasparseError::Model(e) => write!(f, "invalid model: {e}"),
            DynasparseError::Compile(e) => write!(f, "compilation failed: {e}"),
            DynasparseError::Execution(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for DynasparseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DynasparseError::Model(e) => Some(e),
            DynasparseError::Compile(e) => Some(e),
            DynasparseError::Execution(e) => Some(e),
        }
    }
}

impl From<ModelError> for DynasparseError {
    fn from(e: ModelError) -> Self {
        DynasparseError::Model(e)
    }
}

impl From<CompileError> for DynasparseError {
    fn from(e: CompileError) -> Self {
        DynasparseError::Compile(e)
    }
}

impl From<MatrixError> for DynasparseError {
    fn from(e: MatrixError) -> Self {
        DynasparseError::Execution(e)
    }
}

/// Pre-0.2 name of [`DynasparseError`], kept so existing `Result` type
/// annotations keep compiling.  The stringly `InvalidModel(String)` variant
/// is gone: match on [`DynasparseError::Model`] /
/// [`ModelError`] instead.
pub type EngineError = DynasparseError;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: DynasparseError = ModelError::NoLayers.into();
        assert!(matches!(e, DynasparseError::Model(ModelError::NoLayers)));
        assert!(e.to_string().contains("invalid model"));

        let e: DynasparseError = CompileError::EmptyGraph.into();
        assert!(e.to_string().contains("no vertices"));

        let e: DynasparseError = MatrixError::BufferLength {
            expected: 2,
            actual: 1,
        }
        .into();
        assert!(e.to_string().starts_with("execution failed"));
    }

    #[test]
    fn sources_are_preserved() {
        use std::error::Error;
        let e: DynasparseError = CompileError::FeatureDimensionMismatch {
            model_input_dim: 16,
            feature_dim: 8,
        }
        .into();
        assert!(e.source().unwrap().to_string().contains("16-dimensional"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DynasparseError>();
    }
}
