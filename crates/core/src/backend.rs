//! The modeled-accelerator execution backend.
//!
//! [`ModeledAccelBackend`] routes and prices the block-granular executor's
//! products with the accelerator's Table IV performance model (the paper's
//! Analyzer decision) instead of the measured host calibration.  It inherits
//! the [`ExecBackend`] default block primitives unchanged, so the *values*
//! a session computes are bit-identical to the host backend — only which
//! primitive runs per block and what each block is predicted to cost differ.
//! This is the backend behind `DYNASPARSE_BACKEND=accel` and
//! [`BackendKind::ModeledAccel`](dynasparse_model::BackendKind).

use dynasparse_accel::{cycles_to_ms, AcceleratorConfig, PerformanceModel, Primitive};
use dynasparse_matrix::{sanitize_density, HostPrimitive, ProductShape};
use dynasparse_model::{BackendKind, ExecBackend};

/// Execution backend that decides with the accelerator's cycle model.
#[derive(Debug, Clone, Copy)]
pub struct ModeledAccelBackend {
    model: PerformanceModel,
    frequency_mhz: f64,
}

impl ModeledAccelBackend {
    /// Builds the backend from an accelerator configuration (ALU dimension
    /// and core clock).
    pub fn new(config: &AcceleratorConfig) -> Self {
        ModeledAccelBackend {
            model: PerformanceModel::from_config(config),
            frequency_mhz: config.frequency_mhz,
        }
    }

    /// The wrapped Table IV performance model.
    pub fn performance_model(&self) -> &PerformanceModel {
        &self.model
    }
}

fn host_primitive(p: Primitive) -> HostPrimitive {
    match p {
        Primitive::Gemm => HostPrimitive::Gemm,
        Primitive::SpDmm => HostPrimitive::SpDmm,
        Primitive::Spmm => HostPrimitive::Spmm,
    }
}

impl ExecBackend for ModeledAccelBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::ModeledAccel
    }

    fn decide(&self, shape: ProductShape, alpha_x: f64, alpha_y: f64) -> (HostPrimitive, bool) {
        if shape.is_empty() {
            return (HostPrimitive::Skip, false);
        }
        let ax = sanitize_density(alpha_x);
        let ay = sanitize_density(alpha_y);
        match self.model.best_primitive(ax, ay) {
            Some(p) => (host_primitive(p), false),
            None => (HostPrimitive::Skip, false),
        }
    }

    fn predict_ms(
        &self,
        prim: HostPrimitive,
        shape: ProductShape,
        alpha_x: f64,
        alpha_y: f64,
    ) -> f64 {
        let accel_prim = match prim {
            HostPrimitive::Gemm => Primitive::Gemm,
            HostPrimitive::SpDmm => Primitive::SpDmm,
            HostPrimitive::Spmm => Primitive::Spmm,
            HostPrimitive::Skip => return 0.0,
        };
        let cycles = self.model.execution_cycles(
            accel_prim,
            shape.m,
            shape.n,
            shape.d,
            sanitize_density(alpha_x),
            sanitize_density(alpha_y),
        );
        cycles_to_ms(cycles, self.frequency_mhz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_follow_the_table_iv_regions() {
        let b = ModeledAccelBackend::new(&AcceleratorConfig::default());
        let shape = ProductShape::new(64, 64, 16);
        assert_eq!(b.decide(shape, 0.9, 0.8).0, HostPrimitive::Gemm);
        assert_eq!(b.decide(shape, 0.01, 1.0).0, HostPrimitive::SpDmm);
        assert_eq!(b.decide(shape, 0.05, 0.1).0, HostPrimitive::Spmm);
        assert_eq!(b.decide(shape, 0.0, 0.5).0, HostPrimitive::Skip);
        assert_eq!(
            b.decide(ProductShape::new(0, 64, 16), 0.9, 0.9).0,
            HostPrimitive::Skip
        );
    }

    #[test]
    fn predictions_are_finite_wall_clock_milliseconds() {
        let b = ModeledAccelBackend::new(&AcceleratorConfig::default());
        let shape = ProductShape::new(256, 256, 128);
        let gemm = b.predict_ms(HostPrimitive::Gemm, shape, 1.0, 1.0);
        assert!(gemm.is_finite() && gemm > 0.0);
        // 256^2·128 / 16² MACs/cycle at 250 MHz.
        let cycles = (256.0f64 * 256.0 * 128.0 / 256.0).ceil();
        assert!((gemm - cycles / 250e3).abs() < 1e-9);
        assert_eq!(b.predict_ms(HostPrimitive::Skip, shape, 1.0, 1.0), 0.0);
    }

    #[test]
    fn backend_has_no_host_calibration() {
        let b = ModeledAccelBackend::new(&AcceleratorConfig::default());
        assert_eq!(b.kind(), BackendKind::ModeledAccel);
        assert!(b.calibration().is_none());
    }
}
