//! # Dynasparse
//!
//! A from-scratch Rust reproduction of **"Dynasparse: Accelerating GNN
//! Inference through Dynamic Sparsity Exploitation"** (Zhang & Prasanna,
//! IPDPS 2023).
//!
//! Dynasparse accelerates full-graph GNN inference by decoupling the GNN
//! *kernels* (feature aggregation and feature transformation) from the basic
//! computation *primitives* (GEMM, SpDMM, SPMM) and choosing the primitive
//! for every data partition **at runtime**, based on the measured sparsity of
//! the operands.  The original system is an FPGA (Alveo U250) design; this
//! reproduction replaces the FPGA with a cycle-level simulator while keeping
//! every other component — compiler, IR, data partitioning, runtime system,
//! dynamic kernel-to-primitive mapping, task scheduling — faithful to the
//! paper.
//!
//! ## The compile-once / serve-many API
//!
//! The pipeline separates what the paper computes once per (model, graph)
//! pair from what it computes per inference request:
//!
//! 1. [`Planner::plan`] validates the model and runs the one-time work —
//!    computation-graph construction, partition sizing (Algorithm 9),
//!    execution-scheme generation (Algorithms 2/3), static sparsity
//!    profiling and adjacency normalization — into an immutable
//!    [`CompiledPlan`].
//! 2. [`CompiledPlan::session`] opens a [`Session`] holding the reusable
//!    per-strategy Analyzer/Scheduler state and scratch buffers.
//! 3. [`Session::infer`] (or [`Session::infer_batch`]) serves each request:
//!    one functional pass measures the runtime-only feature densities
//!    (Fig. 2) and prices every requested mapping strategy, with **zero
//!    recompilation**.
//!
//! ## Quick start
//!
//! ```
//! use dynasparse::{EngineOptions, MappingStrategy, Planner};
//! use dynasparse_graph::Dataset;
//! use dynasparse_model::{GnnModel, GnnModelKind};
//!
//! // A down-scaled Cora instance keeps the example fast.
//! let dataset = Dataset::Cora.spec().generate_scaled(42, 0.2);
//! let model = GnnModel::standard(
//!     GnnModelKind::Gcn,
//!     dataset.features.dim(),
//!     16,
//!     dataset.spec.num_classes,
//!     7,
//! );
//!
//! // Compile once...
//! let planner = Planner::new(EngineOptions::builder().build());
//! let plan = planner.plan(&model, &dataset).unwrap();
//!
//! // ...serve many.  Every request reuses the compiled program, the
//! // partition sizes, the static sparsity profiles and the normalized
//! // adjacency matrices.
//! let mut session = plan.session(&MappingStrategy::paper_strategies());
//! let report = session.infer(&dataset.features).unwrap();
//!
//! let dynamic = report.run(MappingStrategy::Dynamic).unwrap();
//! let s1 = report.run(MappingStrategy::Static1).unwrap();
//! assert!(dynamic.latency_ms <= s1.latency_ms);
//! println!(
//!     "Dynamic {:.3} ms vs S1 {:.3} ms ({:.2}x); amortized request {:.3} ms",
//!     dynamic.latency_ms,
//!     s1.latency_ms,
//!     s1.latency_ms / dynamic.latency_ms,
//!     report.amortized_ms(MappingStrategy::Dynamic).unwrap(),
//! );
//!
//! // Same topology, new features: no recompilation.
//! let second = session.infer(&dataset.features).unwrap();
//! assert_eq!(second.request_index, 1);
//! ```
//!
//! ## Concurrent serving
//!
//! A [`CompiledPlan`] is immutable and `Send + Sync`; wrap it in an `Arc`
//! and any number of sessions can serve from it concurrently, each on its
//! own thread, sharing (not copying) the model weights and normalized
//! adjacencies:
//!
//! ```
//! use dynasparse::{MappingStrategy, OwnedSession, Planner};
//! use dynasparse_graph::Dataset;
//! use dynasparse_model::{GnnModel, GnnModelKind};
//! use std::sync::Arc;
//!
//! let dataset = Dataset::Cora.spec().generate_scaled(42, 0.1);
//! let model = GnnModel::gcn(dataset.features.dim(), 16, dataset.spec.num_classes, 7);
//! let plan = Planner::default().plan_shared(&model, &dataset).unwrap();
//!
//! let threads: Vec<_> = (0..2)
//!     .map(|_| {
//!         let mut session: OwnedSession =
//!             plan.session_shared(&[MappingStrategy::Dynamic]);
//!         let features = dataset.features.clone();
//!         std::thread::spawn(move || session.infer(&features).unwrap())
//!     })
//!     .collect();
//! for t in threads {
//!     assert!(t.join().unwrap().run(MappingStrategy::Dynamic).is_some());
//! }
//! ```
//!
//! The `dynasparse-serve` crate builds the full serving runtime on this
//! surface: a plan cache keyed by a structural (model, topology)
//! fingerprint, a bounded request queue with deadline-driven
//! micro-batching, a worker thread pool, and serving metrics.
//!
//! ## The dispatching kernel engine
//!
//! By default a session's host execution exploits dynamic sparsity the same
//! way the modeled accelerator does.  The pieces, and who owns what:
//!
//! * **Who picks the mode** — a per-session
//!   [`KernelDispatcher`](dynasparse_model::KernelDispatcher) inspects the
//!   runtime density of every kernel's operands (the exact signal the
//!   Analyzer profiles) and routes the kernel to the blocked dense GEMM,
//!   the sparse-dense CSR kernel, or the Gustavson sparse-sparse kernel of
//!   `dynasparse-matrix`; empty operands skip outright, and sparse-sparse
//!   outputs stay in CSR while their density is below the dispatch
//!   threshold.
//! * **Where the costs come from** — by default
//!   ([`CostModelKind::Calibrated`]) from a **measured host calibration**:
//!   [`Planner::plan`] obtains the process-wide
//!   [`HostCalibration`](dynasparse_matrix::HostCalibration), which times
//!   the three `_into` kernels over a small fixed-seed density × shape grid
//!   on the actual host (at most once per process, ~tens of ms) and fits
//!   per-primitive cost curves (GEMM ∝ `m·n·d`, SpDMM ∝ `nnz(X)·d`,
//!   Gustavson ∝ its flop-proportional nnz work).  The dispatcher's
//!   `decide` is then an argmin over predicted milliseconds.  Calibration
//!   provenance: it runs inside the first `Planner::plan` of the process
//!   (never on the request path), the fit is serde-able JSON
//!   (`HostCalibration::save`/`load`), and the `DYNASPARSE_CALIBRATION`
//!   environment variable overrides it — `off` (or `regions`) disables
//!   calibration, any other value is a path to a persisted fit loaded
//!   instead of measuring, which keeps CI deterministic.  Every plan holds
//!   the fit behind an `Arc`, so all sessions — including every serving
//!   worker of `dynasparse-serve` — share one calibration with no
//!   re-measurement.
//! * **Where the accelerator's regions went** —
//!   [`DispatchPolicy::from_regions`](dynasparse_matrix::DispatchPolicy)
//!   still instantiates the closed-form Table IV regions (GEMM iff
//!   `α_min ≥ 1/2`, SpDMM iff `α_max ≥ 2/p_sys`, SPMM otherwise) from the
//!   planned accelerator's ALU dimension `psys`.  They remain the mapping
//!   the Scheduler prices *for the accelerator*, the host dispatcher's
//!   fallback for degenerate predictions, and the A/B oracle
//!   ([`CostModelKind::Regions`]) — but they model a 16×16 ALU array, not
//!   the host CPU, and measurably mispick on the host (recorded in
//!   `BENCH_kernels.json`: SPMM chosen at α = 0.1 × 0.1 where SpDMM is
//!   ~4x faster), which is why measured calibration is the default.
//! * **Arena lifetime rules** — every session owns a plan-sized
//!   [`KernelArena`](dynasparse_model::KernelArena): one slot per kernel of
//!   the widest layer plus a ping-pong input/accumulator pair, all sized at
//!   plan vertex count × widest feature dimension.  Buffers live as long as
//!   the session, are reshaped (never reallocated) per kernel, and layer
//!   outputs become the next layer's input by pointer swap.  Slots are
//!   **dual-representation**: a slot whose output flips between CSR and
//!   dense across requests retains the inactive representation's buffer
//!   beside the active one, so even oscillating-density traffic keeps
//!   steady-state `Session::infer` at **zero heap allocations on the
//!   kernel hot path** (verified by `tests/alloc_steady_state.rs`,
//!   including a representation-flip workload).
//! * **Intra-request parallelism** — row-parallel kernels fan out over the
//!   persistent [`ThreadPool`](dynasparse_matrix::ThreadPool) (the vendored
//!   rayon stand-in is sequential); sized by `DYNASPARSE_THREADS` or
//!   `available_parallelism`, inline on single-core hosts.
//!
//! Disable with [`HostExecutionOptions`] (`EngineOptions::builder()
//! .host(...)`) to fall back to the fixed-kernel reference path; both paths
//! are bit-identical (`tests/integration_dispatch.rs`), and
//! `benches/kernel_dispatch.rs` asserts the dispatched path serves
//! steady-state requests ≥ 1.5x faster at Cora quarter-scale.
//!
//! One-shot evaluation (compile + single request) remains available through
//! the [`Engine`] wrapper, which produces cycle-for-cycle the same numbers:
//!
//! ```
//! use dynasparse::{Engine, EngineOptions, MappingStrategy};
//! use dynasparse_graph::Dataset;
//! use dynasparse_model::{GnnModel, GnnModelKind};
//!
//! let dataset = Dataset::Cora.spec().generate_scaled(42, 0.2);
//! let model = GnnModel::standard(
//!     GnnModelKind::Gcn,
//!     dataset.features.dim(),
//!     16,
//!     dataset.spec.num_classes,
//!     7,
//! );
//! let eval = Engine::new(EngineOptions::default())
//!     .evaluate(&model, &dataset, &[MappingStrategy::Dynamic])
//!     .unwrap();
//! assert!(eval.run(MappingStrategy::Dynamic).unwrap().latency_ms > 0.0);
//! ```
//!
//! ## Errors
//!
//! Every fallible call returns the typed [`DynasparseError`]:
//! [`DynasparseError::Model`] for structural model problems
//! ([`ModelError`]), [`DynasparseError::Compile`] for plan-time model/graph
//! mismatches ([`CompileError`]), and [`DynasparseError::Execution`] for
//! functional failures (`MatrixError`), including requests whose feature
//! shape does not match the plan.
//!
//! ## Crate map
//!
//! | crate | role |
//! |---|---|
//! | `dynasparse-matrix` | dense/COO/CSR matrices, formats, layouts, profiling |
//! | `dynasparse-graph` | graphs, normalization, synthetic Table VI datasets |
//! | `dynasparse-model` | GCN / GraphSAGE / GIN / SGC, pruning, reference executor |
//! | `dynasparse-compiler` | IR, data partitioning (Alg. 9), execution schemes (Alg. 2/3) |
//! | `dynasparse-accel` | cycle-level accelerator model (ACM, AHM, memory, soft processor) |
//! | `dynasparse-runtime` | Analyzer (Alg. 7), Scheduler (Alg. 8), S1/S2 baselines |
//! | `dynasparse` (this crate) | Planner → CompiledPlan → Session, one-shot Engine wrapper |
//! | `dynasparse-serve` | plan cache, worker pool, micro-batching, serving metrics |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod error;
pub mod planner;
pub mod report;
pub mod session;

pub use engine::{
    CostModelKind, Engine, EngineOptions, EngineOptionsBuilder, HostExecutionOptions,
};
pub use error::{CompileError, DynasparseError, EngineError};
pub use planner::{CompiledPlan, Planner};
pub use report::{Evaluation, InferenceReport, KernelReport, StrategyRun};
pub use session::{OwnedSession, Session};

// Re-export the pieces a downstream user needs to drive the engine without
// depending on every sub-crate explicitly.
pub use dynasparse_accel::AcceleratorConfig;
pub use dynasparse_compiler::CompilerConfig;
pub use dynasparse_model::{LayerError, ModelError};
pub use dynasparse_runtime::MappingStrategy;
