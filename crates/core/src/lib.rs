//! # Dynasparse
//!
//! A from-scratch Rust reproduction of **"Dynasparse: Accelerating GNN
//! Inference through Dynamic Sparsity Exploitation"** (Zhang & Prasanna,
//! IPDPS 2023).
//!
//! Dynasparse accelerates full-graph GNN inference by decoupling the GNN
//! *kernels* (feature aggregation and feature transformation) from the basic
//! computation *primitives* (GEMM, SpDMM, SPMM) and choosing the primitive
//! for every data partition **at runtime**, based on the measured sparsity of
//! the operands.  The original system is an FPGA (Alveo U250) design; this
//! reproduction replaces the FPGA with a cycle-level simulator while keeping
//! every other component — compiler, IR, data partitioning, runtime system,
//! dynamic kernel-to-primitive mapping, task scheduling — faithful to the
//! paper.
//!
//! ## Quick start
//!
//! ```
//! use dynasparse::{Engine, EngineOptions};
//! use dynasparse_graph::Dataset;
//! use dynasparse_model::{GnnModel, GnnModelKind};
//! use dynasparse_runtime::MappingStrategy;
//!
//! // A down-scaled Cora instance keeps the example fast.
//! let dataset = Dataset::Cora.spec().generate_scaled(42, 0.2);
//! let model = GnnModel::standard(
//!     GnnModelKind::Gcn,
//!     dataset.features.dim(),
//!     16,
//!     dataset.spec.num_classes,
//!     7,
//! );
//!
//! let engine = Engine::new(EngineOptions::default());
//! let eval = engine
//!     .evaluate(&model, &dataset, &MappingStrategy::paper_strategies())
//!     .unwrap();
//!
//! let dynamic = eval.run(MappingStrategy::Dynamic).unwrap();
//! let s1 = eval.run(MappingStrategy::Static1).unwrap();
//! assert!(dynamic.latency_ms <= s1.latency_ms);
//! println!(
//!     "Dynamic {:.3} ms vs S1 {:.3} ms ({:.2}x)",
//!     dynamic.latency_ms,
//!     s1.latency_ms,
//!     s1.latency_ms / dynamic.latency_ms
//! );
//! ```
//!
//! ## Crate map
//!
//! | crate | role |
//! |---|---|
//! | `dynasparse-matrix` | dense/COO/CSR matrices, formats, layouts, profiling |
//! | `dynasparse-graph` | graphs, normalization, synthetic Table VI datasets |
//! | `dynasparse-model` | GCN / GraphSAGE / GIN / SGC, pruning, reference executor |
//! | `dynasparse-compiler` | IR, data partitioning (Alg. 9), execution schemes (Alg. 2/3) |
//! | `dynasparse-accel` | cycle-level accelerator model (ACM, AHM, memory, soft processor) |
//! | `dynasparse-runtime` | Analyzer (Alg. 7), Scheduler (Alg. 8), S1/S2 baselines |
//! | `dynasparse` (this crate) | the end-to-end engine: compile → execute → report |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod report;

pub use engine::{Engine, EngineOptions};
pub use report::{Evaluation, KernelReport, StrategyRun};

// Re-export the pieces a downstream user needs to drive the engine without
// depending on every sub-crate explicitly.
pub use dynasparse_compiler::CompilerConfig;
pub use dynasparse_accel::AcceleratorConfig;
pub use dynasparse_runtime::MappingStrategy;
