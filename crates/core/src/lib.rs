//! # Dynasparse
//!
//! A from-scratch Rust reproduction of **"Dynasparse: Accelerating GNN
//! Inference through Dynamic Sparsity Exploitation"** (Zhang & Prasanna,
//! IPDPS 2023).
//!
//! Dynasparse accelerates full-graph GNN inference by decoupling the GNN
//! *kernels* (feature aggregation and feature transformation) from the basic
//! computation *primitives* (GEMM, SpDMM, SPMM) and choosing the primitive
//! for every data partition **at runtime**, based on the measured sparsity of
//! the operands.  The original system is an FPGA (Alveo U250) design; this
//! reproduction replaces the FPGA with a cycle-level simulator while keeping
//! every other component — compiler, IR, data partitioning, runtime system,
//! dynamic kernel-to-primitive mapping, task scheduling — faithful to the
//! paper.
//!
//! ## The compile-once / serve-many API
//!
//! The pipeline separates what the paper computes once per (model, graph)
//! pair from what it computes per inference request:
//!
//! 1. [`Planner::plan`] validates the model and runs the one-time work —
//!    computation-graph construction, partition sizing (Algorithm 9),
//!    execution-scheme generation (Algorithms 2/3), static sparsity
//!    profiling and adjacency normalization — into an immutable
//!    [`CompiledPlan`].
//! 2. [`CompiledPlan::session`] opens a [`Session`] holding the reusable
//!    per-strategy Analyzer/Scheduler state and scratch buffers.
//! 3. [`Session::infer`] (or [`Session::infer_batch`]) serves each request:
//!    one functional pass measures the runtime-only feature densities
//!    (Fig. 2) and prices every requested mapping strategy, with **zero
//!    recompilation**.
//!
//! ## Quick start
//!
//! ```
//! use dynasparse::{EngineOptions, MappingStrategy, Planner};
//! use dynasparse_graph::Dataset;
//! use dynasparse_model::{GnnModel, GnnModelKind};
//!
//! // A down-scaled Cora instance keeps the example fast.
//! let dataset = Dataset::Cora.spec().generate_scaled(42, 0.2);
//! let model = GnnModel::standard(
//!     GnnModelKind::Gcn,
//!     dataset.features.dim(),
//!     16,
//!     dataset.spec.num_classes,
//!     7,
//! );
//!
//! // Compile once...
//! let planner = Planner::new(EngineOptions::builder().build());
//! let plan = planner.plan(&model, &dataset).unwrap();
//!
//! // ...serve many.  Every request reuses the compiled program, the
//! // partition sizes, the static sparsity profiles and the normalized
//! // adjacency matrices.
//! let mut session = plan.session(&MappingStrategy::paper_strategies());
//! let report = session.infer(&dataset.features).unwrap();
//!
//! let dynamic = report.run(MappingStrategy::Dynamic).unwrap();
//! let s1 = report.run(MappingStrategy::Static1).unwrap();
//! assert!(dynamic.latency_ms <= s1.latency_ms);
//! println!(
//!     "Dynamic {:.3} ms vs S1 {:.3} ms ({:.2}x); amortized request {:.3} ms",
//!     dynamic.latency_ms,
//!     s1.latency_ms,
//!     s1.latency_ms / dynamic.latency_ms,
//!     report.amortized_ms(MappingStrategy::Dynamic).unwrap(),
//! );
//!
//! // Same topology, new features: no recompilation.
//! let second = session.infer(&dataset.features).unwrap();
//! assert_eq!(second.request_index, 1);
//! ```
//!
//! ## Concurrent serving
//!
//! A [`CompiledPlan`] is immutable and `Send + Sync`; wrap it in an `Arc`
//! and any number of sessions can serve from it concurrently, each on its
//! own thread, sharing (not copying) the model weights and normalized
//! adjacencies:
//!
//! ```
//! use dynasparse::{MappingStrategy, OwnedSession, Planner};
//! use dynasparse_graph::Dataset;
//! use dynasparse_model::{GnnModel, GnnModelKind};
//! use std::sync::Arc;
//!
//! let dataset = Dataset::Cora.spec().generate_scaled(42, 0.1);
//! let model = GnnModel::gcn(dataset.features.dim(), 16, dataset.spec.num_classes, 7);
//! let plan = Planner::default().plan_shared(&model, &dataset).unwrap();
//!
//! let threads: Vec<_> = (0..2)
//!     .map(|_| {
//!         let mut session: OwnedSession =
//!             plan.session_shared(&[MappingStrategy::Dynamic]);
//!         let features = dataset.features.clone();
//!         std::thread::spawn(move || session.infer(&features).unwrap())
//!     })
//!     .collect();
//! for t in threads {
//!     assert!(t.join().unwrap().run(MappingStrategy::Dynamic).is_some());
//! }
//! ```
//!
//! The `dynasparse-serve` crate builds the full serving runtime on this
//! surface: a plan cache keyed by a structural (model, topology)
//! fingerprint, a bounded request queue with deadline-driven
//! micro-batching, a worker thread pool, and serving metrics.
//!
//! ## The dispatching kernel engine
//!
//! By default a session's host execution exploits dynamic sparsity the same
//! way the modeled accelerator does: a per-session
//! [`KernelDispatcher`](dynasparse_model::KernelDispatcher) routes every
//! kernel by its *runtime* operand densities to the blocked dense GEMM, the
//! sparse-dense CSR kernel, or the Gustavson sparse-sparse kernel of
//! `dynasparse-matrix`, writing into the session's zero-allocation
//! [`KernelArena`](dynasparse_model::KernelArena).  Decisions come from the
//! **measured host calibration** by default ([`CostModelKind::Calibrated`];
//! the accelerator's Table IV regions stay the A/B oracle and fallback,
//! [`CostModelKind::Regions`]).  [`Session::infer_batch`] additionally
//! fuses a micro-batch into one kernel pass per layer over `m × (d·B)`
//! batch operands, bit-identically to the per-request loop.
//!
//! The full story — the Planner → CompiledPlan → Session →
//! KernelDispatcher → KernelArena → ServeRuntime data flow, the
//! buffer-ownership rules behind the zero-allocation contract, where the
//! calibrated cost model sits relative to the Table IV `RegionPolicy`, and
//! how batch fusion recovers exact per-request reports — lives in
//! `ARCHITECTURE.md` at the repository root, together with the knobs
//! documented in `README.md` (`DYNASPARSE_CALIBRATION`,
//! `DYNASPARSE_THREADS`, …).
//!
//! Disable with [`HostExecutionOptions`] (`EngineOptions::builder()
//! .host(...)`) to fall back to the fixed-kernel reference path or the
//! per-request batch loop; all paths are bit-identical
//! (`tests/integration_dispatch.rs`, `tests/integration_batch.rs`), and
//! the benches assert the wins (`kernel_dispatch` ≥ 1.5x steady-state
//! infer, `batch_fusion` ≥ 1.3x requests/s at batch 8).
//!
//! One-shot evaluation (compile + single request) remains available through
//! the [`Engine`] wrapper, which produces cycle-for-cycle the same numbers:
//!
//! ```
//! use dynasparse::{Engine, EngineOptions, MappingStrategy};
//! use dynasparse_graph::Dataset;
//! use dynasparse_model::{GnnModel, GnnModelKind};
//!
//! let dataset = Dataset::Cora.spec().generate_scaled(42, 0.2);
//! let model = GnnModel::standard(
//!     GnnModelKind::Gcn,
//!     dataset.features.dim(),
//!     16,
//!     dataset.spec.num_classes,
//!     7,
//! );
//! let eval = Engine::new(EngineOptions::default())
//!     .evaluate(&model, &dataset, &[MappingStrategy::Dynamic])
//!     .unwrap();
//! assert!(eval.run(MappingStrategy::Dynamic).unwrap().latency_ms > 0.0);
//! ```
//!
//! ## Errors
//!
//! Every fallible call returns the typed [`DynasparseError`]:
//! [`DynasparseError::Model`] for structural model problems
//! ([`ModelError`]), [`DynasparseError::Compile`] for plan-time model/graph
//! mismatches ([`CompileError`]), and [`DynasparseError::Execution`] for
//! functional failures (`MatrixError`), including requests whose feature
//! shape does not match the plan.
//!
//! ## Crate map
//!
//! | crate | role |
//! |---|---|
//! | `dynasparse-matrix` | dense/COO/CSR matrices, formats, layouts, profiling |
//! | `dynasparse-graph` | graphs, normalization, synthetic Table VI datasets |
//! | `dynasparse-model` | GCN / GraphSAGE / GIN / SGC, pruning, reference executor |
//! | `dynasparse-compiler` | IR, data partitioning (Alg. 9), execution schemes (Alg. 2/3) |
//! | `dynasparse-accel` | cycle-level accelerator model (ACM, AHM, memory, soft processor) |
//! | `dynasparse-runtime` | Analyzer (Alg. 7), Scheduler (Alg. 8), S1/S2 baselines |
//! | `dynasparse` (this crate) | Planner → CompiledPlan → Session, one-shot Engine wrapper |
//! | `dynasparse-serve` | plan cache, worker pool, micro-batching, serving metrics |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backend;
pub mod engine;
pub mod error;
pub mod planner;
pub mod report;
pub mod session;
pub mod template;

pub use backend::ModeledAccelBackend;
pub use engine::{
    CostModelKind, Engine, EngineOptions, EngineOptionsBuilder, HostExecutionOptions,
};
pub use error::{CompileError, DynasparseError, EngineError};
pub use planner::{CompiledPlan, Planner};
pub use report::{Evaluation, InferenceReport, KernelReport, StrategyRun};
pub use session::{FaultHook, OwnedSession, Session, DRIFT_BAND, RECALIBRATE_ENV};
pub use template::{ModelTemplate, TemplateInstance};

// Re-export the pieces a downstream user needs to drive the engine without
// depending on every sub-crate explicitly.
pub use dynasparse_accel::AcceleratorConfig;
pub use dynasparse_compiler::CompilerConfig;
pub use dynasparse_model::{
    BackendKind, ExecBackend, HostBackend, LayerError, ModelError, BACKEND_ENV,
};
pub use dynasparse_runtime::{
    MappingStrategy, PricingCacheMode, SharedPricingTier, PRICING_CACHE_ENV,
};
pub use dynasparse_telemetry::{
    CounterId, FlightRecorder, GaugeId, HistogramId, KernelSpan, Registry, SessionTelemetry,
    SpanPrimitive, TelemetryLevel, TelemetrySnapshot, TELEMETRY_ENV,
};
