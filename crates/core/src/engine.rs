//! Engine configuration and the one-shot compatibility wrapper.
//!
//! The serving API is [`Planner`] → [`CompiledPlan`](crate::CompiledPlan) →
//! [`Session`]; see the crate docs for the quickstart.
//! [`Engine::evaluate`] keeps the pre-session one-shot signature alive by
//! planning, opening a single-request session and folding the
//! [`InferenceReport`](crate::InferenceReport) back into an [`Evaluation`] —
//! it produces cycle-for-cycle the same numbers as a session request over
//! the same features, just without amortizing the compilation.

use crate::error::DynasparseError;
use crate::planner::Planner;
use crate::report::Evaluation;
use crate::session::Session;
use dynasparse_accel::AcceleratorConfig;
use dynasparse_compiler::CompilerConfig;
use dynasparse_graph::GraphDataset;
use dynasparse_model::{BackendKind, GnnModel};
use dynasparse_runtime::{MappingStrategy, PricingCacheMode};
use serde::{Deserialize, Serialize};

/// Which cost model picks the host primitive of every dispatched kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CostModelKind {
    /// Argmin over per-primitive cost curves measured on the actual host:
    /// a one-time micro-calibration (at most once per process, shared by
    /// `Arc` across plans and worker sessions) times the three `_into`
    /// kernels over a fixed-seed density × shape grid and fits
    /// GEMM ∝ `m·n·d`, SpDMM ∝ `nnz·d`, Gustavson ∝ flop-proportional nnz
    /// work.  Overridable via `DYNASPARSE_CALIBRATION` (`off` → regions
    /// only; a path → load the persisted fit instead of measuring).
    #[default]
    Calibrated,
    /// The paper's Table IV closed-form regions of the modeled 16×16 ALU
    /// accelerator — the accelerator-side oracle.  On the host this is
    /// known to mispick (see `BENCH_kernels.json`, α = 0.1 × 0.1); it is
    /// kept for A/B comparison and as the calibrated model's fallback.
    Regions,
}

/// How a session executes the functional kernels on the host.
///
/// The dispatching engine (default) routes every kernel to a host primitive
/// picked from its *runtime* operand densities — the same signal the
/// accelerator's Analyzer profiles — and executes into a reusable
/// [`KernelArena`](dynasparse_model::KernelArena), performing zero heap
/// allocations per kernel in steady state.  Disabling it falls back to the
/// fixed-kernel reference path (one fresh allocation per intermediate),
/// which exists for A/B benchmarking and as the equivalence oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostExecutionOptions {
    /// Route host kernels by runtime density through the arena executor.
    pub dispatch: bool,
    /// Fan row-parallel kernels out over the persistent thread pool
    /// (`DYNASPARSE_THREADS` / `available_parallelism`-sized; inline on a
    /// single-core host).
    pub parallel: bool,
    /// Cost model behind every dispatch decision (measured host calibration
    /// by default; the Table IV regions for A/B comparison).
    pub cost_model: CostModelKind,
    /// Fuse [`Session::infer_batch`](crate::Session::infer_batch) across the
    /// batch dimension: the micro-batch's feature matrices are concatenated
    /// into one `m × (d·B)` operand and every kernel runs **once** per layer
    /// instead of once per request, with per-request reports recovered from
    /// block views (bit-identical to the per-request loop — see
    /// `tests/integration_batch.rs`).  Disable to fall back to the
    /// request-by-request loop, which is kept as the equivalence oracle.
    /// Requires `dispatch`; ignored otherwise.
    pub batch_fusion: bool,
    /// Which [`ExecBackend`](dynasparse_model::ExecBackend) routes and
    /// prices every dispatched product: the measured host calibration
    /// ([`BackendKind::Host`], the default) or the modeled accelerator's
    /// cycle-accurate performance model ([`BackendKind::ModeledAccel`]).
    /// Both backends execute through the same block primitives, so swapping
    /// them changes routing and pricing only — results stay bit-identical.
    /// Defaults from `DYNASPARSE_BACKEND` (`host` / `accel`).
    pub backend: BackendKind,
    /// Execute every dense-output kernel as a loop over the compiler
    /// partition's row blocks (`N1` rows per Aggregate block, `N2` per
    /// Update block) with per-block density refits and per-block primitive
    /// decisions.  Disable to fall back to one whole-kernel decision per
    /// dispatch; both paths are bit-identical
    /// (see `tests/integration_backend.rs`).  Requires `dispatch`.
    pub block_dispatch: bool,
    /// Rescale the host calibration online when a per-primitive
    /// measured/predicted drift EWMA leaves the accepted band (see
    /// [`Session`] docs).  Only the host backend
    /// recalibrates; `DYNASPARSE_RECALIBRATE=0` force-disables it.
    pub recalibrate: bool,
    /// Cache Analyzer results keyed on quantized sparsity profiles (see
    /// [`PricingCacheMode`]).  `Bucketed` (default) shares one pricing pass
    /// across profiles that quantize into the same half-octave density
    /// buckets; `Exact` only amortizes exact repeats; `Off` restores
    /// uncached pricing.  Overridable via `DYNASPARSE_PRICING_CACHE`
    /// (`off` / `exact` / `on`).  Embeddings are unaffected in every mode —
    /// the cache only touches the strategy pricing pass.
    pub pricing_cache: PricingCacheMode,
}

impl Default for HostExecutionOptions {
    fn default() -> Self {
        HostExecutionOptions {
            dispatch: true,
            parallel: true,
            cost_model: CostModelKind::Calibrated,
            batch_fusion: true,
            backend: BackendKind::from_env(),
            block_dispatch: true,
            recalibrate: true,
            pricing_cache: PricingCacheMode::default(),
        }
    }
}

/// Engine configuration: the hardware and compiler parameters.
///
/// Construct with [`EngineOptions::builder`] (or `Default` for the paper's
/// Alveo U250 configuration).  Options are `Clone` but deliberately not
/// `Copy`: they are cloned into each [`CompiledPlan`](crate::CompiledPlan) once and borrowed
/// everywhere else.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EngineOptions {
    /// Accelerator (hardware) configuration.
    pub accelerator: AcceleratorConfig,
    /// Compiler configuration.
    pub compiler: CompilerConfig,
    /// Host kernel execution configuration.
    pub host: HostExecutionOptions,
}

impl EngineOptions {
    /// Starts a builder pre-loaded with the paper-default configuration.
    pub fn builder() -> EngineOptionsBuilder {
        EngineOptionsBuilder {
            options: EngineOptions::default(),
        }
    }
}

/// Builder for [`EngineOptions`].
#[derive(Debug, Clone, Default)]
pub struct EngineOptionsBuilder {
    options: EngineOptions,
}

impl EngineOptionsBuilder {
    /// Sets the accelerator (hardware) configuration.
    pub fn accelerator(mut self, accelerator: AcceleratorConfig) -> Self {
        self.options.accelerator = accelerator;
        self
    }

    /// Sets the compiler configuration.
    pub fn compiler(mut self, compiler: CompilerConfig) -> Self {
        self.options.compiler = compiler;
        self
    }

    /// Sets the host kernel execution configuration.
    pub fn host(mut self, host: HostExecutionOptions) -> Self {
        self.options.host = host;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> EngineOptions {
        self.options
    }
}

/// The one-shot Dynasparse engine (compatibility wrapper over
/// [`Planner`] + [`Session`]).
#[derive(Debug, Clone, Default)]
pub struct Engine {
    options: EngineOptions,
}

impl Engine {
    /// Creates an engine with the given options.
    pub fn new(options: EngineOptions) -> Self {
        Engine { options }
    }

    /// The options the engine was built with.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// Compiles and executes `model` on `dataset`, pricing every strategy in
    /// `strategies` from a single functional pass.
    ///
    /// This recompiles on every call.  To serve repeated requests over one
    /// graph topology, plan once with [`Planner::plan`] and call
    /// [`Session::infer`] per request instead.
    pub fn evaluate(
        &self,
        model: &GnnModel,
        dataset: &GraphDataset,
        strategies: &[MappingStrategy],
    ) -> Result<Evaluation, DynasparseError> {
        let plan = Planner::new(self.options.clone()).plan(model, dataset)?;
        let mut session = Session::new(&plan, strategies);
        let report = session.infer(&dataset.features)?;
        Ok(report.into_evaluation(&plan))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::DynasparseError;
    use dynasparse_graph::Dataset;
    use dynasparse_model::{prune_model, GnnModelKind, ModelError};
    use dynasparse_runtime::MappingStrategy;

    fn small_eval(kind: GnnModelKind, weight_sparsity: f64) -> Evaluation {
        let dataset = Dataset::Cora.spec().generate_scaled(11, 0.2);
        let mut model = GnnModel::standard(
            kind,
            dataset.features.dim(),
            16,
            dataset.spec.num_classes,
            3,
        );
        if weight_sparsity > 0.0 {
            model = prune_model(&model, weight_sparsity);
        }
        Engine::new(EngineOptions::default())
            .evaluate(&model, &dataset, &MappingStrategy::paper_strategies())
            .unwrap()
    }

    #[test]
    fn evaluation_produces_one_run_per_strategy() {
        let eval = small_eval(GnnModelKind::Gcn, 0.0);
        assert_eq!(eval.runs.len(), 3);
        assert!(eval.compile_ms > 0.0);
        assert!(eval.data_movement_ms > 0.0);
        for run in &eval.runs {
            assert!(run.total_cycles > 0);
            assert!(run.latency_ms > 0.0);
            assert!(run.end_to_end_ms > run.latency_ms);
            assert_eq!(run.kernels.len(), 4);
        }
    }

    #[test]
    fn dynamic_never_loses_to_static_strategies() {
        for kind in GnnModelKind::all() {
            let eval = small_eval(kind, 0.0);
            let dynamic = eval.run(MappingStrategy::Dynamic).unwrap().latency_ms;
            let s1 = eval.run(MappingStrategy::Static1).unwrap().latency_ms;
            let s2 = eval.run(MappingStrategy::Static2).unwrap().latency_ms;
            assert!(
                dynamic <= s1 * 1.001 && dynamic <= s2 * 1.001,
                "{}: dynamic {dynamic} s1 {s1} s2 {s2}",
                kind.name()
            );
        }
    }

    #[test]
    fn gcn_dynamic_beats_s1_substantially_on_sparse_inputs() {
        // Cora's input features are ~1% dense; S1 runs the dominating first
        // Update as dense GEMM, so the dynamic mapping wins by a large
        // factor (Table VII shows 21.5x at full scale).
        let eval = small_eval(GnnModelKind::Gcn, 0.0);
        let speedup = eval
            .speedup(MappingStrategy::Static1, MappingStrategy::Dynamic)
            .unwrap();
        assert!(speedup > 3.0, "speedup {speedup}");
    }

    #[test]
    fn pruning_increases_dynamic_advantage_over_s2() {
        let unpruned = small_eval(GnnModelKind::Gin, 0.0);
        let pruned = small_eval(GnnModelKind::Gin, 0.95);
        let so_s2_unpruned = unpruned
            .speedup(MappingStrategy::Static2, MappingStrategy::Dynamic)
            .unwrap();
        let so_s2_pruned = pruned
            .speedup(MappingStrategy::Static2, MappingStrategy::Dynamic)
            .unwrap();
        assert!(
            so_s2_pruned > so_s2_unpruned,
            "pruned {so_s2_pruned} vs unpruned {so_s2_unpruned}"
        );
        // Pruning must not slow the dynamic strategy down; at this reduced
        // scale the kernels are partly load-bound, so we only require a
        // non-regression here (the full-scale sweep of the fig11_12 harness
        // shows the latency reduction the paper reports).
        let lat_unpruned = unpruned.run(MappingStrategy::Dynamic).unwrap().latency_ms;
        let lat_pruned = pruned.run(MappingStrategy::Dynamic).unwrap().latency_ms;
        assert!(lat_pruned <= lat_unpruned * 1.02);
    }

    #[test]
    fn density_trace_matches_kernel_reports() {
        let eval = small_eval(GnnModelKind::Gcn, 0.0);
        assert_eq!(eval.density_trace.stages.len(), 4);
        let run = eval.run(MappingStrategy::Dynamic).unwrap();
        for (stage, kernel) in eval.density_trace.stages.iter().zip(run.kernels.iter()) {
            assert!((stage.density - kernel.output_density).abs() < 1e-12);
        }
        assert_eq!(eval.output_embeddings.dim(), 7);
    }

    #[test]
    fn runtime_overhead_accounting_is_consistent() {
        let eval = small_eval(GnnModelKind::Gcn, 0.0);
        let run = eval.run(MappingStrategy::Dynamic).unwrap();
        // One decision per block product was accounted.
        assert_eq!(run.total_decisions(), run.total_mix().total());
        assert!(run.overhead.total_seconds() > 0.0);
        // At this heavily down-scaled size the partitions are tiny, so the
        // soft-processor fraction is larger than the paper's full-scale 6.8%
        // average; it must still stay within the same order of magnitude as
        // the execution itself (the fig13 harness reports full-scale values).
        assert!(run.overhead.fraction_of_execution() < 20.0);
        // Static strategies make no runtime decisions.
        let s1 = eval.run(MappingStrategy::Static1).unwrap();
        assert_eq!(s1.total_decisions(), 0);
        assert_eq!(s1.overhead.k2p_seconds, 0.0);
    }

    #[test]
    fn invalid_model_is_rejected_with_typed_error() {
        let dataset = Dataset::Cora.spec().generate_scaled(1, 0.1);
        let mut model = GnnModel::gcn(dataset.features.dim(), 8, 3, 1);
        model.weights.clear();
        let err = Engine::new(EngineOptions::default())
            .evaluate(&model, &dataset, &[MappingStrategy::Dynamic])
            .unwrap_err();
        assert!(matches!(
            err,
            DynasparseError::Model(ModelError::MissingWeight {
                layer: 0,
                weight: 0,
                available: 0
            })
        ));
    }

    #[test]
    fn options_builder_matches_struct_literal() {
        let built = EngineOptions::builder()
            .accelerator(AcceleratorConfig::default())
            .compiler(CompilerConfig::default())
            .build();
        assert_eq!(built, EngineOptions::default());
        let accel = AcceleratorConfig {
            num_cores: 3,
            ..Default::default()
        };
        let custom = EngineOptions::builder().accelerator(accel).build();
        assert_eq!(custom.accelerator.num_cores, 3);
        assert_eq!(custom.compiler, CompilerConfig::default());
    }
}
