//! The end-to-end Dynasparse engine.
//!
//! `Engine::evaluate` reproduces the workflow of Fig. 3:
//!
//! 1. **Compile** — the compiler builds the computation graph, chooses the
//!    partition sizes (Algorithm 9), generates the execution schemes
//!    (Algorithms 2/3) and profiles the compile-time sparsity.
//! 2. **Execute** — the functional executor computes every kernel's output
//!    feature matrix (so the intermediate densities the paper can only know
//!    at runtime are *measured*, not assumed), while, kernel by kernel, the
//!    Analyzer maps every block product to a primitive and the Scheduler
//!    distributes the tasks over the Computation Cores of the simulated
//!    accelerator.  One functional pass prices all requested mapping
//!    strategies, since the functional result does not depend on the
//!    mapping.
//! 3. **Report** — per-strategy accelerator latency, runtime-system
//!    overhead, end-to-end latency, per-kernel primitive mix and the density
//!    trace of Fig. 2.

use crate::report::{Evaluation, KernelReport, StrategyRun};
use dynasparse_accel::{cycles_to_ms, AcceleratorConfig, ComputationCore, SoftProcessorModel};
use dynasparse_compiler::{compile, CompilerConfig, KernelKind};
use dynasparse_graph::GraphDataset;
use dynasparse_model::{GnnModel, ReferenceExecutor};
use dynasparse_runtime::{
    Analyzer, MappingStrategy, OperandProfiles, RuntimeOverhead, Scheduler,
};
use serde::{Deserialize, Serialize};

/// Engine configuration: the hardware and compiler parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineOptions {
    /// Accelerator (hardware) configuration.
    pub accelerator: AcceleratorConfig,
    /// Compiler configuration.
    pub compiler: CompilerConfig,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            accelerator: AcceleratorConfig::default(),
            compiler: CompilerConfig::default(),
        }
    }
}

/// Errors produced by the engine.
#[derive(Debug)]
pub enum EngineError {
    /// The model failed structural validation.
    InvalidModel(String),
    /// A functional kernel execution failed (shape mismatch between the
    /// model and the dataset).
    Execution(dynasparse_matrix::MatrixError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::InvalidModel(e) => write!(f, "invalid model: {e}"),
            EngineError::Execution(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<dynasparse_matrix::MatrixError> for EngineError {
    fn from(e: dynasparse_matrix::MatrixError) -> Self {
        EngineError::Execution(e)
    }
}

/// The Dynasparse engine.
#[derive(Debug, Clone, Copy)]
pub struct Engine {
    options: EngineOptions,
}

impl Engine {
    /// Creates an engine with the given options.
    pub fn new(options: EngineOptions) -> Self {
        Engine { options }
    }

    /// The options the engine was built with.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// Compiles and executes `model` on `dataset`, pricing every strategy in
    /// `strategies` from a single functional pass.
    pub fn evaluate(
        &self,
        model: &GnnModel,
        dataset: &GraphDataset,
        strategies: &[MappingStrategy],
    ) -> Result<Evaluation, EngineError> {
        model
            .validate()
            .map_err(EngineError::InvalidModel)?;

        // ---- Step 1: compilation / preprocessing. ----
        let compile_report = compile(model, dataset, &self.options.compiler);
        let program = &compile_report.program;
        let spec = program.partition;
        let num_vertices = dataset.graph.num_vertices();

        // ---- Step 2: functional execution + per-kernel analysis. ----
        let core = ComputationCore::new(self.options.accelerator);
        let soft = SoftProcessorModel::from_config(&self.options.accelerator);
        let executor = ReferenceExecutor::new(model, &dataset.graph);

        struct StrategyState {
            strategy: MappingStrategy,
            analyzer: Analyzer,
            scheduler: Scheduler,
            kernels: Vec<KernelReport>,
        }
        let mut states: Vec<StrategyState> = strategies
            .iter()
            .map(|&strategy| StrategyState {
                strategy,
                analyzer: Analyzer::new(core, strategy),
                scheduler: Scheduler::new(self.options.accelerator.num_cores),
                kernels: Vec::with_capacity(program.kernels.len()),
            })
            .collect();

        let mut kernel_counter = 0usize;
        let mut density_stages = Vec::with_capacity(program.kernels.len());
        let output = executor.forward_with(&dataset.features, |_layer, _ki, spec_kernel, input, out| {
            let compiled = &program.kernels[kernel_counter];
            debug_assert_eq!(
                compiled.ir.kind == KernelKind::Aggregate,
                spec_kernel.op.is_aggregate(),
                "compiled kernel order must match execution order"
            );
            // Runtime sparsity profiling of the kernel's input feature matrix
            // at the granularity its execution scheme uses.
            let grid = match compiled.ir.kind {
                KernelKind::Aggregate => spec.feature_grid(num_vertices, input.dim()),
                KernelKind::Update => spec.subfiber_grid(num_vertices, input.dim()),
            };
            let feature_profile = input.density_profile(&grid);
            let profiles = OperandProfiles {
                adjacency: &program.static_sparsity.adjacency,
                weights: &program.static_sparsity.weights,
                features: &feature_profile,
            };
            for state in &mut states {
                let analysis = state.analyzer.analyze_kernel(compiled, &profiles);
                let schedule = state
                    .scheduler
                    .schedule_kernel(compiled.ir.id, &analysis);
                state.kernels.push(KernelReport {
                    kernel_id: compiled.ir.id,
                    layer_id: compiled.ir.layer_id,
                    kind: compiled.ir.kind,
                    cycles: schedule.cycles(),
                    utilization: schedule.utilization,
                    decisions: analysis.decisions,
                    mix: analysis.mix,
                    input_density: input.density(),
                    output_density: out.density(),
                });
            }
            density_stages.push(dynasparse_model::StageDensity {
                layer: compiled.ir.layer_id - 1,
                kernel: compiled.ir.kernel_in_layer,
                op: compiled.ir.kind.label().to_string(),
                density: out.density(),
            });
            kernel_counter += 1;
        })?;

        // ---- Step 3: assemble the reports. ----
        let freq = self.options.accelerator.frequency_mhz;
        let compile_ms = compile_report.total_ms();
        let data_movement_ms = self
            .options
            .accelerator
            .pcie_transfer_seconds(program.data_movement_bytes)
            * 1e3;

        let runs = states
            .into_iter()
            .map(|state| {
                let total_cycles = state.scheduler.total_cycles();
                let latency_ms = cycles_to_ms(total_cycles, freq);
                let decisions: usize = state.kernels.iter().map(|k| k.decisions).sum();
                let overhead = RuntimeOverhead::from_counts(
                    &soft,
                    decisions,
                    state.scheduler.total_schedule_events(),
                    latency_ms * 1e-3,
                );
                StrategyRun {
                    strategy: state.strategy,
                    average_utilization: state.scheduler.average_utilization(),
                    kernels: state.kernels,
                    total_cycles,
                    latency_ms,
                    end_to_end_ms: compile_ms + data_movement_ms + latency_ms,
                    overhead,
                }
            })
            .collect();

        Ok(Evaluation {
            compile_ms,
            partition: spec,
            data_movement_ms,
            density_trace: dynasparse_model::DensityTrace {
                input_density: dataset.features.density(),
                stages: density_stages,
            },
            runs,
            output_embeddings: output,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynasparse_graph::Dataset;
    use dynasparse_model::{prune_model, GnnModelKind};
    use dynasparse_runtime::MappingStrategy;

    fn small_eval(kind: GnnModelKind, weight_sparsity: f64) -> Evaluation {
        let dataset = Dataset::Cora.spec().generate_scaled(11, 0.2);
        let mut model = GnnModel::standard(
            kind,
            dataset.features.dim(),
            16,
            dataset.spec.num_classes,
            3,
        );
        if weight_sparsity > 0.0 {
            model = prune_model(&model, weight_sparsity);
        }
        Engine::new(EngineOptions::default())
            .evaluate(&model, &dataset, &MappingStrategy::paper_strategies())
            .unwrap()
    }

    #[test]
    fn evaluation_produces_one_run_per_strategy() {
        let eval = small_eval(GnnModelKind::Gcn, 0.0);
        assert_eq!(eval.runs.len(), 3);
        assert!(eval.compile_ms > 0.0);
        assert!(eval.data_movement_ms > 0.0);
        for run in &eval.runs {
            assert!(run.total_cycles > 0);
            assert!(run.latency_ms > 0.0);
            assert!(run.end_to_end_ms > run.latency_ms);
            assert_eq!(run.kernels.len(), 4);
        }
    }

    #[test]
    fn dynamic_never_loses_to_static_strategies() {
        for kind in GnnModelKind::all() {
            let eval = small_eval(kind, 0.0);
            let dynamic = eval.run(MappingStrategy::Dynamic).unwrap().latency_ms;
            let s1 = eval.run(MappingStrategy::Static1).unwrap().latency_ms;
            let s2 = eval.run(MappingStrategy::Static2).unwrap().latency_ms;
            assert!(
                dynamic <= s1 * 1.001 && dynamic <= s2 * 1.001,
                "{}: dynamic {dynamic} s1 {s1} s2 {s2}",
                kind.name()
            );
        }
    }

    #[test]
    fn gcn_dynamic_beats_s1_substantially_on_sparse_inputs() {
        // Cora's input features are ~1% dense; S1 runs the dominating first
        // Update as dense GEMM, so the dynamic mapping wins by a large
        // factor (Table VII shows 21.5x at full scale).
        let eval = small_eval(GnnModelKind::Gcn, 0.0);
        let speedup = eval
            .speedup(MappingStrategy::Static1, MappingStrategy::Dynamic)
            .unwrap();
        assert!(speedup > 3.0, "speedup {speedup}");
    }

    #[test]
    fn pruning_increases_dynamic_advantage_over_s2() {
        let unpruned = small_eval(GnnModelKind::Gin, 0.0);
        let pruned = small_eval(GnnModelKind::Gin, 0.9);
        let so_s2_unpruned = unpruned
            .speedup(MappingStrategy::Static2, MappingStrategy::Dynamic)
            .unwrap();
        let so_s2_pruned = pruned
            .speedup(MappingStrategy::Static2, MappingStrategy::Dynamic)
            .unwrap();
        assert!(
            so_s2_pruned > so_s2_unpruned,
            "pruned {so_s2_pruned} vs unpruned {so_s2_unpruned}"
        );
        // Pruning must not slow the dynamic strategy down; at this reduced
        // scale the kernels are partly load-bound, so we only require a
        // non-regression here (the full-scale sweep of the fig11_12 harness
        // shows the latency reduction the paper reports).
        let lat_unpruned = unpruned.run(MappingStrategy::Dynamic).unwrap().latency_ms;
        let lat_pruned = pruned.run(MappingStrategy::Dynamic).unwrap().latency_ms;
        assert!(lat_pruned <= lat_unpruned * 1.02);
    }

    #[test]
    fn density_trace_matches_kernel_reports() {
        let eval = small_eval(GnnModelKind::Gcn, 0.0);
        assert_eq!(eval.density_trace.stages.len(), 4);
        let run = eval.run(MappingStrategy::Dynamic).unwrap();
        for (stage, kernel) in eval.density_trace.stages.iter().zip(run.kernels.iter()) {
            assert!((stage.density - kernel.output_density).abs() < 1e-12);
        }
        assert_eq!(eval.output_embeddings.dim(), 7);
    }

    #[test]
    fn runtime_overhead_accounting_is_consistent() {
        let eval = small_eval(GnnModelKind::Gcn, 0.0);
        let run = eval.run(MappingStrategy::Dynamic).unwrap();
        // One decision per block product was accounted.
        assert_eq!(run.total_decisions(), run.total_mix().total());
        assert!(run.overhead.total_seconds() > 0.0);
        // At this heavily down-scaled size the partitions are tiny, so the
        // soft-processor fraction is larger than the paper's full-scale 6.8%
        // average; it must still stay within the same order of magnitude as
        // the execution itself (the fig13 harness reports full-scale values).
        assert!(run.overhead.fraction_of_execution() < 20.0);
        // Static strategies make no runtime decisions.
        let s1 = eval.run(MappingStrategy::Static1).unwrap();
        assert_eq!(s1.total_decisions(), 0);
        assert_eq!(s1.overhead.k2p_seconds, 0.0);
    }

    #[test]
    fn invalid_model_is_rejected() {
        let dataset = Dataset::Cora.spec().generate_scaled(1, 0.1);
        let mut model = GnnModel::gcn(dataset.features.dim(), 8, 3, 1);
        model.weights.clear();
        let err = Engine::new(EngineOptions::default())
            .evaluate(&model, &dataset, &[MappingStrategy::Dynamic])
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidModel(_)));
    }
}
