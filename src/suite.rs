//! Facade for the workspace-level test/example package: re-exports the
//! public engine API so snippets can `use dynasparse_suite as dynasparse;`.

pub use dynasparse::*;
