//! Predicted-vs-measured drift detection against a stale calibration.
//!
//! The drift gauges exist to catch exactly one failure mode: a persisted
//! `DYNASPARSE_CALIBRATION` fit that no longer describes the host it runs
//! on.  These tests manufacture that situation — the reference fit inflated
//! by six orders of magnitude — and prove (a) with online recalibration
//! pinned off, the per-primitive EWMA gauges move far away from the
//! calibrated-correctly reading (~1.0), and (b) with recalibration on (the
//! default), the session rescales the stale fit back and the gauges recover.
//!
//! This lives in its **own test binary** on purpose: the shared calibration
//! is a process-wide `OnceLock`, so the environment variable must be set
//! before anything in the process plans.  Sibling integration tests run in
//! other binaries and keep their measured (or default) calibration.

use dynasparse::{
    EngineOptions, HostExecutionOptions, MappingStrategy, Planner, Registry, TelemetryLevel,
};
use dynasparse_graph::Dataset;
use dynasparse_matrix::HostCalibration;
use dynasparse_model::{GnnModel, GnnModelKind};
use dynasparse_telemetry::GaugeId;
use std::sync::Arc;

/// Persists the 1e6x-inflated reference fit and points
/// `DYNASPARSE_CALIBRATION` at it.  Idempotent — both tests share the
/// process-wide `OnceLock`, and both want the stale fit loaded.
fn install_stale_calibration() {
    // A deliberately stale fit: every cost curve of the reference fixture
    // inflated 1e6x, so each prediction claims the host is a million times
    // slower than it is.  Uniform inflation keeps the argmin (and therefore
    // the dispatch decisions) unchanged — only the drift should notice.
    let mut stale = HostCalibration::reference();
    for fit in [&mut stale.gemm, &mut stale.spdmm, &mut stale.spmm] {
        fit.work *= 1e6;
        fit.output *= 1e6;
        fit.per_row *= 1e6;
    }
    assert!(stale.is_valid(), "the stale fit must still parse as valid");
    let path = std::env::temp_dir().join("dynasparse_stale_calibration.json");
    let path = path.to_str().expect("utf-8 temp path").to_string();
    stale.save(&path).expect("persist the stale fit");
    std::env::set_var("DYNASPARSE_CALIBRATION", &path);
}

#[test]
fn stale_calibration_moves_the_drift_gauges() {
    install_stale_calibration();

    let ds = Dataset::Cora.spec().generate_scaled(11, 0.12);
    let model = GnnModel::standard(
        GnnModelKind::Gcn,
        ds.features.dim(),
        16,
        ds.spec.num_classes,
        3,
    );
    // Recalibration pinned off: this test observes the *raw* drift signal —
    // with the default `recalibrate: true` the session would rescale the
    // stale fit after the first out-of-band request and the gauges would
    // recover to ~1.0 (which `recalibration_repairs_a_stale_fit` proves).
    let plan = Planner::new(
        EngineOptions::builder()
            .host(HostExecutionOptions {
                recalibrate: false,
                ..Default::default()
            })
            .build(),
    )
    .plan(&model, &ds)
    .unwrap();
    let calibration = plan
        .calibration()
        .expect("the env var points at a loadable fit");
    assert!(
        calibration.gemm.work >= 0.5,
        "the plan must have loaded the stale fit, not re-measured \
         (gemm.work = {})",
        calibration.gemm.work
    );

    let registry = Arc::new(Registry::new(TelemetryLevel::Counters));
    let mut session = plan.session(&[MappingStrategy::Dynamic]);
    session.set_telemetry(Arc::clone(&registry));
    for _ in 0..3 {
        session.infer(&ds.features).unwrap();
    }

    let drifts = [
        ("gemm", registry.gauge(GaugeId::DriftGemm)),
        ("spdmm", registry.gauge(GaugeId::DriftSpdmm)),
        ("spmm", registry.gauge(GaugeId::DriftSpmm)),
    ];
    assert!(
        drifts.iter().any(|(_, d)| d.is_finite()),
        "at least one drift gauge must be set after dispatched requests, got {drifts:?}"
    );
    for (name, drift) in drifts {
        if drift.is_finite() {
            // measured/predicted against a 1e6x-inflated fit reads many
            // orders of magnitude below the healthy ~1.0; 0.5 leaves huge
            // slack for host noise while still proving the gauge moved.
            assert!(
                (0.0..0.5).contains(&drift),
                "drift gauge {name} must expose the stale fit, got {drift}"
            );
        }
    }
}

#[test]
fn recalibration_repairs_a_stale_fit() {
    install_stale_calibration();

    let ds = Dataset::Cora.spec().generate_scaled(11, 0.12);
    let model = GnnModel::standard(
        GnnModelKind::Gcn,
        ds.features.dim(),
        16,
        ds.spec.num_classes,
        3,
    );
    // Default options: `recalibrate: true`.  The first served request's
    // drift EWMA lands far below `DRIFT_BAND`, which rescales the offending
    // primitive's fit by the observed ratio, swaps it into the dispatcher
    // and resets the gauge — so after a few requests every finite gauge
    // must have recovered toward the healthy ~1.0 reading.
    let plan = Planner::default().plan(&model, &ds).unwrap();

    let registry = Arc::new(Registry::new(TelemetryLevel::Counters));
    let mut session = plan.session(&[MappingStrategy::Dynamic]);
    session.set_telemetry(Arc::clone(&registry));
    for _ in 0..8 {
        session.infer(&ds.features).unwrap();
    }

    let drifts = [
        ("gemm", registry.gauge(GaugeId::DriftGemm)),
        ("spdmm", registry.gauge(GaugeId::DriftSpdmm)),
        ("spmm", registry.gauge(GaugeId::DriftSpmm)),
    ];
    for (name, drift) in drifts {
        if drift.is_finite() {
            // A gauge that is finite after recalibration reflects the
            // *rescaled* fit.  The 1e6x staleness would read < 1e-3; the
            // generous band below only needs to prove the repair happened,
            // not that the one-shot rescale is perfectly converged.
            assert!(
                drift > 0.05,
                "drift gauge {name} must recover after online recalibration, got {drift}"
            );
        }
    }
}
