//! Equivalence of the fused batch path and the per-request loop.
//!
//! `Session::infer_batch` (with the default `batch_fusion`) concatenates a
//! micro-batch into one `m × (d·B)` operand and runs every kernel once per
//! layer; the per-request loop (`batch_fusion: false`) is kept as the
//! equivalence oracle.  This suite proves the fused path changes **nothing
//! observable**: per-request embeddings are bit-identical, density traces
//! (input density and every kernel stage) are exactly equal, strategy
//! pricing (cycles, latency bits, utilization, kernel reports, primitive
//! mixes) matches, and `request_index` numbering is unchanged — across
//! batch sizes 1/3/8, all four model kinds, and batches mixing per-request
//! feature densities and representations.

use dynasparse::{
    CompiledPlan, EngineOptions, HostExecutionOptions, InferenceReport, MappingStrategy, Planner,
};
use dynasparse_graph::{generators::dense_features, Dataset, FeatureMatrix, GraphDataset};
use dynasparse_matrix::CsrMatrix;
use dynasparse_model::{GnnModel, GnnModelKind};

fn fixture(kind: GnnModelKind) -> (GnnModel, GraphDataset) {
    let ds = Dataset::Cora.spec().generate_scaled(19, 0.12);
    let model = GnnModel::standard(kind, ds.features.dim(), 16, ds.spec.num_classes, 3);
    (model, ds)
}

fn plan_with_fusion(model: &GnnModel, ds: &GraphDataset, fusion: bool) -> CompiledPlan {
    let options = EngineOptions::builder()
        .host(HostExecutionOptions {
            batch_fusion: fusion,
            ..Default::default()
        })
        .build();
    Planner::new(options).plan(model, ds).unwrap()
}

/// A micro-batch mixing per-request feature densities, with every other
/// request stored sparse (CSR) when `mixed_repr` is set.
fn request_batch(ds: &GraphDataset, n: usize, mixed_repr: bool) -> Vec<FeatureMatrix> {
    (0..n)
        .map(|i| {
            let density = 0.01 + 0.9 * (i as f64 / n.max(1) as f64);
            let f = dense_features(
                ds.graph.num_vertices(),
                ds.features.dim(),
                density,
                500 + i as u64,
            );
            if mixed_repr && i % 2 == 1 {
                FeatureMatrix::Sparse(CsrMatrix::from_dense(&f.to_dense()))
            } else {
                f
            }
        })
        .collect()
}

/// Exact equality of everything a report exposes, except the output
/// embeddings' storage representation (the fused path may materialise a
/// block dense where the solo pass kept CSR, or vice versa; the values must
/// still match bit for bit).
fn assert_reports_equal(want: &InferenceReport, got: &InferenceReport, ctx: &str) {
    assert_eq!(
        want.request_index, got.request_index,
        "{ctx}: request_index"
    );
    assert_eq!(
        want.data_movement_ms.to_bits(),
        got.data_movement_ms.to_bits(),
        "{ctx}: data_movement_ms"
    );
    assert_eq!(
        want.feature_movement_ms.to_bits(),
        got.feature_movement_ms.to_bits(),
        "{ctx}: feature_movement_ms"
    );
    assert_eq!(
        want.density_trace, got.density_trace,
        "{ctx}: density_trace"
    );
    assert_eq!(
        want.output_embeddings.to_dense().as_slice(),
        got.output_embeddings.to_dense().as_slice(),
        "{ctx}: embeddings"
    );
    assert_eq!(want.runs.len(), got.runs.len(), "{ctx}: run count");
    for (rw, rg) in want.runs.iter().zip(got.runs.iter()) {
        assert_eq!(rw.strategy, rg.strategy, "{ctx}: strategy");
        assert_eq!(rw.total_cycles, rg.total_cycles, "{ctx}: cycles");
        assert_eq!(
            rw.latency_ms.to_bits(),
            rg.latency_ms.to_bits(),
            "{ctx}: latency"
        );
        assert_eq!(
            rw.average_utilization.to_bits(),
            rg.average_utilization.to_bits(),
            "{ctx}: utilization"
        );
        assert_eq!(rw.overhead, rg.overhead, "{ctx}: overhead");
        assert_eq!(rw.kernels.len(), rg.kernels.len(), "{ctx}: kernel count");
        for (kw, kg) in rw.kernels.iter().zip(rg.kernels.iter()) {
            assert_eq!(
                (kw.kernel_id, kw.layer_id, kw.kind, kw.cycles, kw.decisions),
                (kg.kernel_id, kg.layer_id, kg.kind, kg.cycles, kg.decisions),
                "{ctx}: kernel identity/cost"
            );
            assert_eq!(kw.mix, kg.mix, "{ctx}: mix");
            assert_eq!(
                kw.input_density.to_bits(),
                kg.input_density.to_bits(),
                "{ctx}: input density"
            );
            assert_eq!(
                kw.output_density.to_bits(),
                kg.output_density.to_bits(),
                "{ctx}: output density"
            );
            assert_eq!(
                (kw.utilization.to_bits()),
                (kg.utilization.to_bits()),
                "{ctx}: kernel utilization"
            );
        }
    }
}

#[test]
fn fused_batches_are_bit_identical_to_the_per_request_loop() {
    for kind in GnnModelKind::all() {
        let (model, ds) = fixture(kind);
        let fused_plan = plan_with_fusion(&model, &ds, true);
        let loop_plan = plan_with_fusion(&model, &ds, false);
        let strategies = MappingStrategy::paper_strategies();
        let mut fused = fused_plan.session(&strategies);
        let mut serial = loop_plan.session(&strategies);
        for (batch_size, mixed) in [(1usize, false), (3, false), (8, true)] {
            let batch = request_batch(&ds, batch_size, mixed);
            let want = serial.infer_batch(&batch).unwrap();
            let got = fused.infer_batch(&batch).unwrap();
            assert_eq!(want.len(), got.len());
            for (w, g) in want.iter().zip(got.iter()) {
                assert_reports_equal(
                    w,
                    g,
                    &format!(
                        "{} batch {batch_size} mixed {mixed} request {}",
                        kind.name(),
                        w.request_index
                    ),
                );
            }
        }
        // Both sessions served the same number of requests in the same
        // order: fusion does not disturb request numbering.
        assert_eq!(fused.requests_served(), serial.requests_served());
    }
}

#[test]
fn fused_batches_match_sequential_single_infers() {
    let (model, ds) = fixture(GnnModelKind::Gcn);
    let plan = plan_with_fusion(&model, &ds, true);
    let batch = request_batch(&ds, 5, true);
    let mut one_by_one = plan.session(&[MappingStrategy::Dynamic]);
    let want: Vec<InferenceReport> = batch.iter().map(|f| one_by_one.infer(f).unwrap()).collect();
    let mut batched = plan.session(&[MappingStrategy::Dynamic]);
    let got = batched.infer_batch(&batch).unwrap();
    for (w, g) in want.iter().zip(got.iter()) {
        assert_reports_equal(
            w,
            g,
            &format!("vs Session::infer, request {}", w.request_index),
        );
    }
}

#[test]
fn fused_sessions_interleave_batch_sizes_and_stay_exact() {
    // The batch arena is sized for the largest batch seen and reused by
    // smaller (and later equal) micro-batches; correctness must not depend
    // on the batch-size history.
    let (model, ds) = fixture(GnnModelKind::GraphSage);
    let fused_plan = plan_with_fusion(&model, &ds, true);
    let loop_plan = plan_with_fusion(&model, &ds, false);
    let mut fused = fused_plan.session(&[MappingStrategy::Dynamic]);
    let mut serial = loop_plan.session(&[MappingStrategy::Dynamic]);
    for (batch_size, mixed) in [(8usize, false), (2, true), (8, true), (3, false)] {
        let batch = request_batch(&ds, batch_size, mixed);
        let want = serial.infer_batch(&batch).unwrap();
        let got = fused.infer_batch(&batch).unwrap();
        for (w, g) in want.iter().zip(got.iter()) {
            assert_reports_equal(
                w,
                g,
                &format!("interleaved batch {batch_size} request {}", w.request_index),
            );
        }
    }
}

#[test]
fn reserve_batch_pre_sizes_without_changing_results() {
    let (model, ds) = fixture(GnnModelKind::Gin);
    let plan = plan_with_fusion(&model, &ds, true);
    let batch = request_batch(&ds, 4, false);
    let mut lazy = plan.session(&[MappingStrategy::Dynamic]);
    let want = lazy.infer_batch(&batch).unwrap();
    let mut reserved = plan.session(&[MappingStrategy::Dynamic]);
    reserved.reserve_batch(8);
    let got = reserved.infer_batch(&batch).unwrap();
    for (w, g) in want.iter().zip(got.iter()) {
        assert_reports_equal(w, g, &format!("reserved request {}", w.request_index));
    }
}

#[test]
fn fused_batch_with_a_bad_shape_fails_before_serving_anything() {
    let (model, ds) = fixture(GnnModelKind::Gcn);
    let plan = plan_with_fusion(&model, &ds, true);
    let mut session = plan.session(&[MappingStrategy::Dynamic]);
    let mut batch = request_batch(&ds, 3, false);
    batch[1] = FeatureMatrix::Dense(dynasparse_matrix::DenseMatrix::zeros(3, 5));
    assert!(session.infer_batch(&batch).is_err());
    assert_eq!(session.requests_served(), 0);
    // The session stays healthy for the next valid (fused) batch.
    let ok = request_batch(&ds, 3, false);
    assert_eq!(session.infer_batch(&ok).unwrap().len(), 3);
    assert_eq!(session.requests_served(), 3);
}
