//! Bit-identity of template instantiation against cold planning.
//!
//! The load-bearing claim of `ModelTemplate` is that splitting compilation
//! into a model-only template plus per-request topology instantiation is a
//! *pure* refactor of `Planner::plan`: for any subgraph, the instantiated
//! plan and everything downstream of it — compiled program, served
//! embeddings, density traces, strategy pricing — is bit-identical to
//! planning from scratch on a dataset wrapping the same subgraph.  Only the
//! work distribution changes (weights profiled once per partition width
//! instead of once per request).

use dynasparse::{
    CompiledPlan, EngineOptions, InferenceReport, MappingStrategy, ModelTemplate, Planner,
};
use dynasparse_graph::{
    top_degree_ego_net, Dataset, FeatureMatrix, Graph, GraphDataset, NeighborSampler,
    SampledSubgraph,
};
use dynasparse_model::{GnnModel, GnnModelKind};
use std::sync::Arc;

/// Parent graph + a model of the requested kind sized for it.
fn fixture(kind: GnnModelKind) -> (GraphDataset, GnnModel) {
    let ds = Dataset::Cora.spec().generate_scaled(21, 0.12);
    let model = GnnModel::standard(kind, ds.features.dim(), 16, ds.spec.num_classes, 9);
    (ds, model)
}

/// Wraps a sampled subgraph as a `GraphDataset` so the cold `Planner::plan`
/// path can consume it (the spec/scale fields are planner-inert metadata).
fn as_dataset(parent: &GraphDataset, sub: &SampledSubgraph) -> GraphDataset {
    GraphDataset {
        spec: parent.spec,
        scale: parent.scale,
        graph: sub.graph().clone(),
        features: sub.extract_features(&parent.features),
    }
}

/// Bit-level equality of two reports, down to every float.
fn assert_reports_identical(a: &InferenceReport, b: &InferenceReport, ctx: &str) {
    assert_eq!(
        a.data_movement_ms.to_bits(),
        b.data_movement_ms.to_bits(),
        "{ctx}: data_movement_ms"
    );
    assert_eq!(
        a.feature_movement_ms.to_bits(),
        b.feature_movement_ms.to_bits(),
        "{ctx}: feature_movement_ms"
    );
    assert_eq!(a.density_trace, b.density_trace, "{ctx}: density_trace");
    assert_eq!(
        a.output_embeddings, b.output_embeddings,
        "{ctx}: output embeddings"
    );
    assert_eq!(a.runs.len(), b.runs.len(), "{ctx}: run count");
    for (ra, rb) in a.runs.iter().zip(b.runs.iter()) {
        assert_eq!(ra.strategy, rb.strategy, "{ctx}: strategy order");
        assert_eq!(ra.total_cycles, rb.total_cycles, "{ctx}: cycles");
        assert_eq!(
            ra.latency_ms.to_bits(),
            rb.latency_ms.to_bits(),
            "{ctx}: latency"
        );
        // `end_to_end_ms` is deliberately NOT compared: it folds in the
        // wall-clock compile/instantiate time, and instantiation being
        // faster than cold planning is the feature under test.
        assert_eq!(
            ra.average_utilization.to_bits(),
            rb.average_utilization.to_bits(),
            "{ctx}: utilization"
        );
    }
}

/// Runs one request through both plans and compares everything.
fn assert_plans_equivalent(
    cold: &Arc<CompiledPlan>,
    warm: &Arc<CompiledPlan>,
    features: &FeatureMatrix,
    strategies: &[MappingStrategy],
    ctx: &str,
) {
    assert_eq!(cold.program(), warm.program(), "{ctx}: compiled program");
    assert_eq!(cold.partition(), warm.partition(), "{ctx}: partition spec");
    let want = cold.session(strategies).infer(features).unwrap();
    let got = warm.session(strategies).infer(features).unwrap();
    assert_reports_identical(&want, &got, ctx);
}

#[test]
fn instantiation_matches_cold_planning_across_all_model_kinds() {
    let strategies = MappingStrategy::paper_strategies();
    for kind in GnnModelKind::all() {
        let (parent, model) = fixture(kind);
        let template = ModelTemplate::compile(&model, EngineOptions::default()).unwrap();

        let sub = NeighborSampler::new([8, 4], 3).sample(&parent.graph, &[0, 50, 101]);
        let dataset = as_dataset(&parent, &sub);
        let cold = Planner::default().plan_shared(&model, &dataset).unwrap();
        let warm = template
            .instantiate(&dataset.graph, &dataset.features)
            .unwrap()
            .into_plan();

        assert_plans_equivalent(
            &cold,
            &warm,
            &dataset.features,
            &strategies,
            &format!("{kind:?} sampled subgraph"),
        );
    }
}

#[test]
fn instantiation_matches_cold_planning_on_ego_nets() {
    let (parent, model) = fixture(GnnModelKind::Gcn);
    let template = ModelTemplate::compile(&model, EngineOptions::default()).unwrap();
    for (root, cap) in [(0u32, 12usize), (7, 40), (200, 25)] {
        let sub = top_degree_ego_net(&parent.graph, root, 2, cap);
        let dataset = as_dataset(&parent, &sub);
        let cold = Planner::default().plan_shared(&model, &dataset).unwrap();
        let warm = template
            .instantiate(&dataset.graph, &dataset.features)
            .unwrap()
            .into_plan();
        assert_plans_equivalent(
            &cold,
            &warm,
            &dataset.features,
            &[MappingStrategy::Dynamic],
            &format!("ego net root={root} cap={cap}"),
        );
    }
}

#[test]
fn a_rebound_session_matches_fresh_sessions_across_varying_subgraphs() {
    let (parent, model) = fixture(GnnModelKind::GraphSage);
    let template = ModelTemplate::compile(&model, EngineOptions::default()).unwrap();
    let strategies = [MappingStrategy::Dynamic, MappingStrategy::Static1];

    // Subgraphs of deliberately different sizes, so the reused session's
    // arenas must re-shape between requests.
    let requests: Vec<(Graph, FeatureMatrix)> = [(4usize, 1u64), (16, 2), (2, 3), (9, 4)]
        .iter()
        .map(|&(fanout, seed)| {
            let sub = NeighborSampler::new([fanout, fanout / 2 + 1], seed)
                .sample(&parent.graph, &[seed as u32 * 31]);
            let features = sub.extract_features(&parent.features);
            (sub.into_graph(), features)
        })
        .collect();
    let sizes: Vec<usize> = requests.iter().map(|(g, _)| g.num_vertices()).collect();
    assert!(
        sizes.windows(2).any(|w| w[0] != w[1]),
        "fixture should vary subgraph sizes, got {sizes:?}"
    );

    let mut reused = template
        .instantiate(&requests[0].0, &requests[0].1)
        .unwrap()
        .session(&strategies);
    for (i, (graph, features)) in requests.iter().enumerate() {
        let instance = template.instantiate(graph, features).unwrap();
        let want = instance.session(&strategies).infer(features).unwrap();
        reused.rebind(instance.into_plan());
        let got = reused.infer(features).unwrap();
        assert_reports_identical(
            &want,
            &got,
            &format!("rebind request {i} (|V|={})", sizes[i]),
        );
    }
    // The reused session kept counting across rebinds.
    assert_eq!(reused.requests_served(), requests.len());
}

#[test]
fn weight_profiles_are_computed_once_per_partition_width() {
    let (parent, model) = fixture(GnnModelKind::Gin);
    let template = ModelTemplate::compile(&model, EngineOptions::default()).unwrap();
    assert_eq!(template.weight_profile_cache_len(), 0);

    // Same-sized subgraphs land on the same partition width: one profile
    // entry serves them all.
    let a = NeighborSampler::new([6, 3], 1).sample(&parent.graph, &[0]);
    let b = NeighborSampler::new([6, 3], 2).sample(&parent.graph, &[40]);
    template
        .instantiate(a.graph(), &a.extract_features(&parent.features))
        .unwrap();
    let after_first = template.weight_profile_cache_len();
    assert_eq!(after_first, 1);
    let bytes_after_first = template.approx_bytes();
    template
        .instantiate(b.graph(), &b.extract_features(&parent.features))
        .unwrap();
    assert_eq!(template.weight_profile_cache_len(), after_first);
    assert_eq!(template.approx_bytes(), bytes_after_first);

    // A drastically different size can add at most one more width.
    let big = NeighborSampler::new([24, 12, 6], 3).sample(&parent.graph, &[0, 9, 77, 140]);
    template
        .instantiate(big.graph(), &big.extract_features(&parent.features))
        .unwrap();
    assert!(template.weight_profile_cache_len() <= after_first + 1);
}

#[test]
fn instances_borrow_the_template_not_copy_it() {
    let (parent, model) = fixture(GnnModelKind::Sgc);
    let template = ModelTemplate::compile_shared(&model, EngineOptions::default()).unwrap();
    let sub = NeighborSampler::new([5, 5], 8).sample(&parent.graph, &[3, 33]);
    let features = sub.extract_features(&parent.features);
    let plan = template
        .instantiate(sub.graph(), &features)
        .unwrap()
        .into_plan();
    let other = NeighborSampler::new([3, 3], 9).sample(&parent.graph, &[60]);
    let plan2 = template
        .instantiate(other.graph(), &other.extract_features(&parent.features))
        .unwrap()
        .into_plan();
    // Weights and calibration are pointer-shared through the template; the
    // only per-request state is topology-sized.
    assert!(std::ptr::eq(plan.model(), template.model()));
    assert!(std::ptr::eq(plan2.model(), template.model()));
    match (plan.calibration(), plan2.calibration()) {
        (Some(a), Some(b)) => assert!(Arc::ptr_eq(a, b)),
        (None, None) => {}
        _ => panic!("calibration presence diverged between sibling instances"),
    }
    assert!(plan.approx_bytes() > 0);
}
