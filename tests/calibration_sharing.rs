//! Reference-count accounting of the process-shared host calibration.
//!
//! The measured host kernel calibration (`HostCalibration::shared`) is a
//! process-global `Arc`: every plan and every serving worker must share the
//! one fit, and tearing a runtime down must return the count to its
//! pre-runtime value (no worker re-measures or leaks a clone).
//!
//! This lives in its own test binary on purpose: the count is global, so a
//! sibling test planning concurrently would race the two reads.  Cargo runs
//! test binaries sequentially, and this binary holds only count-sensitive
//! tests (the report-identity side of the claim is covered by
//! `tests/integration_serve.rs`).

use dynasparse::{CompiledPlan, Planner};
use dynasparse_graph::Dataset;
use dynasparse_model::{GnnModel, GnnModelKind};
use dynasparse_serve::{ServeConfig, ServeRuntime};
use std::sync::Arc;

fn plan_fixture() -> Arc<CompiledPlan> {
    let ds = Dataset::Cora.spec().generate_scaled(13, 0.1);
    let model = GnnModel::standard(
        GnnModelKind::Gcn,
        ds.features.dim(),
        16,
        ds.spec.num_classes,
        3,
    );
    Planner::default().plan_shared(&model, &ds).unwrap()
}

#[test]
fn runtimes_share_one_calibration_and_release_it_on_shutdown() {
    let plan = plan_fixture();
    let Some(calibration) = plan.calibration() else {
        return; // DYNASPARSE_CALIBRATION=off
    };
    assert!(calibration.is_valid());
    let refs_before = Arc::strong_count(calibration);

    // A second plan over the same process shares the identical fit by
    // pointer, not a re-measurement.
    let other = plan_fixture();
    let other_calibration = other.calibration().expect("calibration active");
    assert!(Arc::ptr_eq(calibration, other_calibration));
    drop(other);
    assert_eq!(Arc::strong_count(calibration), refs_before);

    // Spinning up (and tearing down) a multi-worker runtime leaves the
    // count where it started: worker sessions borrow the fit through the
    // plan and drop their clones with the sessions.
    let ds = Dataset::Cora.spec().generate_scaled(13, 0.1);
    let runtime = ServeRuntime::start(
        Arc::clone(&plan),
        ServeConfig::default().workers(3).max_batch(4),
    );
    let results = runtime.serve_all((0..6).map(|_| ds.features.clone()));
    assert!(results.iter().all(Result::is_ok));
    runtime.shutdown();
    assert_eq!(
        Arc::strong_count(calibration),
        refs_before,
        "workers must not leak calibration clones"
    );
}
