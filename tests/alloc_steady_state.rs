//! Allocation accounting of the serving hot path.
//!
//! The dispatching executor's contract is that a steady-state request — one
//! whose arena has already served the same topology — performs **zero** heap
//! allocations inside the kernel hot path: kernels write into reused arena
//! buffers, activations apply in place, layer outputs move by pointer swap
//! and runtime profiles are refit into per-kernel scratch.  This test
//! instruments the global allocator and proves it, then checks that a full
//! `Session::infer` allocates only its constant per-request bookkeeping
//! (reports, output clone, analyzer pricing) — the same count every request,
//! and strictly less than the fixed-kernel legacy path spends.
//!
//! Everything runs in a single `#[test]` because the counter is global.

use dynasparse::{EngineOptions, HostExecutionOptions, MappingStrategy, Planner};
use dynasparse_graph::generators::{dense_features, power_law_graph, PowerLawConfig};
use dynasparse_graph::{Dataset, FeatureMatrix};
use dynasparse_matrix::{CsrMatrix, DispatchPolicy, PartitionSpec};
use dynasparse_model::{prune_model, GnnModel, GnnModelKind, ReferenceExecutor};
use dynasparse_telemetry::{CounterId, Registry, SessionTelemetry, TelemetryLevel};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn count_allocs(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn steady_state_kernel_hot_path_is_allocation_free() {
    let dataset = Dataset::Cora.spec().generate_scaled(3, 0.25);
    let features = dataset.features.clone();

    // --- The executor-level guarantee: zero allocations per request. ---
    for kind in GnnModelKind::all() {
        let model = GnnModel::standard(
            kind,
            dataset.features.dim(),
            16,
            dataset.spec.num_classes,
            5,
        );
        let exec = ReferenceExecutor::new(&model, &dataset.graph);
        let dispatcher = exec.dispatcher(DispatchPolicy::from_regions(16), false);
        let mut arena = exec.arena(dataset.graph.num_vertices());
        // Warm up: the first requests size every buffer for this topology.
        for _ in 0..2 {
            exec.forward_dispatch(&features, &dispatcher, &mut arena, |_, _, _, _, _| {})
                .unwrap();
        }
        let allocs = count_allocs(|| {
            exec.forward_dispatch(&features, &dispatcher, &mut arena, |_, _, _, _, _| {})
                .unwrap();
        });
        assert_eq!(
            allocs,
            0,
            "{}: steady-state dispatched forward must not allocate",
            kind.name()
        );
    }

    // --- The block-granular path must meet the same zero-alloc bar. ---
    //
    // Block-granular dispatch (the session default) re-decides the primitive
    // per partition row block: every block's density refit, backend decision
    // and row-range kernel writes into the same arena slot the whole-kernel
    // path uses, so a warmed arena serves the blocked forward with zero heap
    // allocations too.
    for kind in GnnModelKind::all() {
        let model = GnnModel::standard(
            kind,
            dataset.features.dim(),
            16,
            dataset.spec.num_classes,
            5,
        );
        let exec = ReferenceExecutor::new(&model, &dataset.graph);
        let dispatcher = exec.dispatcher(DispatchPolicy::from_regions(16), false);
        let mut arena = exec.arena(dataset.graph.num_vertices());
        let spec = PartitionSpec::new(64, 16).unwrap();
        for _ in 0..2 {
            exec.forward_dispatch_blocked_probed(
                &features,
                &dispatcher,
                &mut arena,
                Some(&spec),
                None,
                |_, _, _, _, _| {},
            )
            .unwrap();
        }
        let allocs = count_allocs(|| {
            exec.forward_dispatch_blocked_probed(
                &features,
                &dispatcher,
                &mut arena,
                Some(&spec),
                None,
                |_, _, _, _, _| {},
            )
            .unwrap();
        });
        assert_eq!(
            allocs,
            0,
            "{}: steady-state block-granular forward must not allocate",
            kind.name()
        );
    }

    // --- Telemetry at `counters` must not break the zero-alloc contract. ---
    //
    // The probed executor path (per-dispatch span accounting into the
    // sharded registry) writes only to preallocated atomic slots, so a
    // steady-state forward with counters-level telemetry attached must stay
    // at zero heap allocations — observability is free on the hot path.
    {
        let model = GnnModel::standard(
            GnnModelKind::Gcn,
            dataset.features.dim(),
            16,
            dataset.spec.num_classes,
            5,
        );
        let exec = ReferenceExecutor::new(&model, &dataset.graph);
        let dispatcher = exec.dispatcher(DispatchPolicy::from_regions(16), false);
        let mut arena = exec.arena(dataset.graph.num_vertices());
        let registry = Arc::new(Registry::new(TelemetryLevel::Counters));
        let mut telemetry = SessionTelemetry::new(Arc::clone(&registry));
        for _ in 0..2 {
            exec.forward_dispatch_probed(
                &features,
                &dispatcher,
                &mut arena,
                Some(&mut telemetry),
                |_, _, _, _, _| {},
            )
            .unwrap();
        }
        let spans_before = registry.counter(CounterId::KernelSpans);
        let allocs = count_allocs(|| {
            exec.forward_dispatch_probed(
                &features,
                &dispatcher,
                &mut arena,
                Some(&mut telemetry),
                |_, _, _, _, _| {},
            )
            .unwrap();
        });
        assert_eq!(
            allocs, 0,
            "steady-state probed forward with counters telemetry must not allocate"
        );
        assert!(
            registry.counter(CounterId::KernelSpans) > spans_before,
            "the zero-alloc forward must still have recorded kernel spans"
        );
    }

    // --- The batched guarantee: zero allocations per fused micro-batch. ---
    //
    // A batch-sized arena that has served a micro-batch of this topology
    // once must serve every later micro-batch (same or smaller batch size)
    // with zero heap allocations: concatenation reuses the batch slots,
    // the column-blocked kernels write into reused buffers, and the
    // per-request block views extract into retained scratch.
    for kind in GnnModelKind::all() {
        let model = GnnModel::standard(
            kind,
            dataset.features.dim(),
            16,
            dataset.spec.num_classes,
            5,
        );
        let exec = ReferenceExecutor::new(&model, &dataset.graph);
        let dispatcher = exec.dispatcher(DispatchPolicy::from_regions(16), false);
        let mut arena = exec.arena_batch(dataset.graph.num_vertices(), 4);
        let batch: Vec<FeatureMatrix> = (0..4).map(|_| features.clone()).collect();
        for _ in 0..2 {
            exec.forward_dispatch_batch(&batch, &dispatcher, &mut arena, |_, _, _, _| {})
                .unwrap();
        }
        let allocs = count_allocs(|| {
            exec.forward_dispatch_batch(&batch, &dispatcher, &mut arena, |_, _, _, _| {})
                .unwrap();
        });
        assert_eq!(
            allocs,
            0,
            "{}: steady-state fused batch forward must not allocate",
            kind.name()
        );
        // A smaller micro-batch over the same warmed arena is free too.
        let small: Vec<FeatureMatrix> = (0..2).map(|_| features.clone()).collect();
        exec.forward_dispatch_batch(&small, &dispatcher, &mut arena, |_, _, _, _| {})
            .unwrap();
        let allocs = count_allocs(|| {
            exec.forward_dispatch_batch(&small, &dispatcher, &mut arena, |_, _, _, _| {})
                .unwrap();
        });
        assert_eq!(
            allocs,
            0,
            "{}: a smaller micro-batch over a warmed batch arena must not allocate",
            kind.name()
        );
    }

    // --- Sparse batches: CSR concatenation must also reach zero. ---
    {
        let model = GnnModel::standard(
            GnnModelKind::Gcn,
            dataset.features.dim(),
            16,
            dataset.spec.num_classes,
            5,
        );
        let exec = ReferenceExecutor::new(&model, &dataset.graph);
        let dispatcher = exec.dispatcher(DispatchPolicy::from_regions(16), false);
        let mut arena = exec.arena_batch(dataset.graph.num_vertices(), 3);
        let sparse = FeatureMatrix::Sparse(CsrMatrix::from_dense(&features.to_dense()));
        let batch: Vec<FeatureMatrix> = (0..3).map(|_| sparse.clone()).collect();
        for _ in 0..2 {
            exec.forward_dispatch_batch(&batch, &dispatcher, &mut arena, |_, _, _, _| {})
                .unwrap();
        }
        let allocs = count_allocs(|| {
            exec.forward_dispatch_batch(&batch, &dispatcher, &mut arena, |_, _, _, _| {})
                .unwrap();
        });
        assert_eq!(
            allocs, 0,
            "steady-state fused batch over CSR requests must not allocate"
        );
    }

    // --- Oscillating densities: representation flips must stay free. ---
    //
    // Two request classes whose sparse-sparse kernel output straddles the
    // sparse-output threshold flip an arena slot between CSR and dense on
    // every request.  The dual-representation slots retain the inactive
    // buffer, so once both phases have warmed up, the flip costs zero heap
    // allocations (before this fix every flip dropped one representation
    // and re-grew it on the next).
    {
        let graph = power_law_graph(
            "alloc-oscillate",
            &PowerLawConfig {
                num_vertices: 48,
                num_edges: 180,
                exponent: 2.2,
                seed: 3,
            },
        );
        let model = prune_model(&GnnModel::gcn(24, 8, 5, 17), 0.98);
        let exec = ReferenceExecutor::new(&model, &graph);
        let policy = DispatchPolicy {
            gemm_min_density: 0.5,
            spdmm_max_density: 2.0 / 64.0,
            // Between the two classes' aggregate-output densities.
            sparse_output_threshold: 0.015,
        };
        let dispatcher = exec.dispatcher(policy, false);
        let mut arena = exec.arena(48);
        let sparse_req = FeatureMatrix::Sparse(CsrMatrix::from_dense(
            &dense_features(48, 24, 0.01, 3).to_dense(),
        ));
        let dense_req = FeatureMatrix::Sparse(CsrMatrix::from_dense(
            &dense_features(48, 24, 0.06, 4).to_dense(),
        ));
        // Warm up both phases of the oscillation (and prove it oscillates).
        let mut kinds = Vec::new();
        for req in [&sparse_req, &dense_req, &sparse_req, &dense_req] {
            let mut pass = Vec::new();
            exec.forward_dispatch(req, &dispatcher, &mut arena, |_, _, _, _, out| {
                pass.push(out.is_sparse());
            })
            .unwrap();
            kinds.push(pass);
        }
        assert_ne!(
            kinds[0], kinds[1],
            "workload must flip a slot's representation between request classes"
        );
        for (label, req) in [("sparse", &sparse_req), ("dense", &dense_req)] {
            let allocs = count_allocs(|| {
                exec.forward_dispatch(req, &dispatcher, &mut arena, |_, _, _, _, _| {})
                    .unwrap();
            });
            assert_eq!(
                allocs, 0,
                "oscillating {label}-phase forward must not allocate \
                 (dual-representation slots must retain both buffers)"
            );
        }
    }

    // --- The session-level budget: constant per request, below legacy. ---
    //
    // Default options serve with block-granular dispatch, so this constant
    // budget covers the blocked hot path end to end (per-block refits and
    // decisions included).  Online recalibration is pinned off: a
    // drift-triggered fit rescale is a deliberate, rare allocation event
    // (clone + swap of the calibration) whose timing depends on host noise,
    // which would make the per-request count non-constant.
    let model = GnnModel::standard(
        GnnModelKind::Gcn,
        dataset.features.dim(),
        16,
        dataset.spec.num_classes,
        5,
    );
    let strategies = [MappingStrategy::Dynamic];

    let plan = Planner::new(
        EngineOptions::builder()
            .host(HostExecutionOptions {
                recalibrate: false,
                ..Default::default()
            })
            .build(),
    )
    .plan(&model, &dataset)
    .unwrap();
    let mut session = plan.session(&strategies);
    for _ in 0..2 {
        session.infer(&features).unwrap();
    }
    let run = |session: &mut dynasparse::Session<'_>| {
        count_allocs(|| {
            session.infer(&features).unwrap();
        })
    };
    let a = run(&mut session);
    let b = run(&mut session);
    let c = run(&mut session);
    assert_eq!(a, b, "steady-state infer allocation count must be constant");
    assert_eq!(b, c, "steady-state infer allocation count must be constant");

    let legacy_plan = Planner::new(
        EngineOptions::builder()
            .host(HostExecutionOptions {
                dispatch: false,
                parallel: false,
                ..Default::default()
            })
            .build(),
    )
    .plan(&model, &dataset)
    .unwrap();
    let mut legacy = legacy_plan.session(&strategies);
    for _ in 0..2 {
        legacy.infer(&features).unwrap();
    }
    let legacy_allocs = run(&mut legacy);
    assert!(
        a < legacy_allocs,
        "dispatch path ({a} allocs/request) must allocate less than the \
         fixed-kernel path ({legacy_allocs} allocs/request)"
    );
    // The per-request budget must not scale with the kernel count times
    // matrix size — it is report bookkeeping only.  Give it generous slack
    // over the measured ~dozens so the assertion stays robust.
    assert!(
        a < 2_000,
        "steady-state infer spent {a} allocations; the kernel hot path is leaking into the heap"
    );

    // --- Pricing-cache regimes: hits and misses both reach a steady state. ---
    //
    // The budget above already serves with the default bucketed cache (every
    // measured request is a pure hit).  Two things remain: the hit regime
    // must be steady for *every* model kind, and the miss/evict regime — a
    // thrashing 8-slot cache where every request re-prices and evicts — must
    // also settle to a constant per-cycle count (the Analyzer pass and the
    // in-place eviction may allocate, but only the same bounded bookkeeping
    // every time).
    for kind in GnnModelKind::all() {
        let model = GnnModel::standard(
            kind,
            dataset.features.dim(),
            16,
            dataset.spec.num_classes,
            3,
        );
        let plan = Planner::new(
            EngineOptions::builder()
                .host(HostExecutionOptions {
                    recalibrate: false,
                    ..Default::default()
                })
                .build(),
        )
        .plan(&model, &dataset)
        .unwrap();
        let mut session = plan.session(&strategies);
        for _ in 0..2 {
            session.infer(&features).unwrap();
        }
        let a = run(&mut session);
        let b = run(&mut session);
        let c = run(&mut session);
        assert_eq!(
            a, b,
            "{kind:?}: cache-hit steady state must allocate a constant count"
        );
        assert_eq!(
            b, c,
            "{kind:?}: cache-hit steady state must allocate a constant count"
        );
    }

    let model = GnnModel::standard(
        GnnModelKind::Gcn,
        dataset.features.dim(),
        16,
        dataset.spec.num_classes,
        3,
    );
    let plan = Planner::new(
        EngineOptions::builder()
            .host(HostExecutionOptions {
                recalibrate: false,
                ..Default::default()
            })
            .build(),
    )
    .plan(&model, &dataset)
    .unwrap();
    let mut session = plan.session(&strategies);
    // 8 slots against 5 request classes x several kernels: every request
    // misses and evicts, forever.
    session.set_pricing_capacity(8);
    let classes: Vec<FeatureMatrix> = [0.02f64, 0.1, 0.3, 0.6, 0.9]
        .iter()
        .enumerate()
        .map(|(i, d)| {
            dense_features(
                dataset.graph.num_vertices(),
                dataset.features.dim(),
                *d,
                40 + i as u64,
            )
        })
        .collect();
    let cycle = |session: &mut dynasparse::Session<'_>| {
        count_allocs(|| {
            for request in &classes {
                session.infer(request).unwrap();
            }
        })
    };
    cycle(&mut session); // warm arenas and per-class report scratch
    cycle(&mut session);
    let x = cycle(&mut session);
    let y = cycle(&mut session);
    let z = cycle(&mut session);
    assert_eq!(
        x, y,
        "cache-miss/evict steady state must allocate a constant count per cycle"
    );
    assert_eq!(
        y, z,
        "cache-miss/evict steady state must allocate a constant count per cycle"
    );
}
