//! Numerical equivalence of the dispatching kernel engine.
//!
//! `Session::infer` with host dispatch enabled (the default: mode-picked
//! kernels into the reusable arena, optionally pooled) must be bit-identical
//! to the fixed-kernel seed path (`HostExecutionOptions { dispatch: false }`)
//! — same output embeddings, same runtime density trace, same modeled cycle
//! counts — for every model kind, for dense and sparse feature storage, and
//! for pruned weights that trigger the sparse-sparse route.

use dynasparse::{EngineOptions, HostExecutionOptions, MappingStrategy, Planner};
use dynasparse_graph::{Dataset, FeatureMatrix, GraphDataset};
use dynasparse_model::{prune_model, GnnModel, GnnModelKind};
use dynasparse_runtime::MappingStrategy as Strategy;

fn options(dispatch: bool, parallel: bool) -> EngineOptions {
    EngineOptions::builder()
        .host(HostExecutionOptions {
            dispatch,
            parallel,
            ..Default::default()
        })
        .build()
}

fn assert_equivalent(model: &GnnModel, dataset: &GraphDataset, label: &str) {
    let strategies = MappingStrategy::paper_strategies();
    let legacy_plan = Planner::new(options(false, false))
        .plan(model, dataset)
        .unwrap();
    let mut legacy = legacy_plan.session(&strategies);
    let want = legacy.infer(&dataset.features).unwrap();

    for parallel in [false, true] {
        let plan = Planner::new(options(true, parallel))
            .plan(model, dataset)
            .unwrap();
        let mut session = plan.session(&strategies);
        // Two requests: the second exercises steady-state arena reuse.
        let _first = session.infer(&dataset.features).unwrap();
        let got = session.infer(&dataset.features).unwrap();

        assert_eq!(
            got.output_embeddings.to_dense().as_slice(),
            want.output_embeddings.to_dense().as_slice(),
            "{label} (parallel={parallel}): embeddings must be bit-identical"
        );
        assert_eq!(
            got.density_trace.stages, want.density_trace.stages,
            "{label} (parallel={parallel}): density traces must match"
        );
        for (g, w) in got.runs.iter().zip(want.runs.iter()) {
            assert_eq!(g.strategy, w.strategy);
            assert_eq!(
                g.total_cycles,
                w.total_cycles,
                "{label} (parallel={parallel}, {}): modeled cycles must match",
                g.strategy.label()
            );
            for (gk, wk) in g.kernels.iter().zip(w.kernels.iter()) {
                assert_eq!(gk.mix, wk.mix, "{label}: primitive mix must match");
                assert_eq!(gk.input_density, wk.input_density);
                assert_eq!(gk.output_density, wk.output_density);
            }
        }
    }
}

#[test]
fn every_model_kind_is_equivalent_on_dense_features() {
    let dataset = Dataset::Cora.spec().generate_scaled(5, 0.12);
    for kind in GnnModelKind::all() {
        let model = GnnModel::standard(
            kind,
            dataset.features.dim(),
            16,
            dataset.spec.num_classes,
            7,
        );
        assert_equivalent(&model, &dataset, kind.name());
    }
}

#[test]
fn sparse_stored_features_are_equivalent() {
    // NELL-like storage: very sparse features kept in CSR, which drives the
    // sparse-sparse aggregate route (and the keep-sparse output rule).
    let mut dataset = Dataset::Cora.spec().generate_scaled(11, 0.12);
    let dense = dataset.features.to_dense();
    dataset.features = FeatureMatrix::Sparse(dynasparse_matrix::CsrMatrix::from_dense(&dense));
    let model = GnnModel::gcn(dataset.features.dim(), 16, dataset.spec.num_classes, 3);
    assert_equivalent(&model, &dataset, "gcn/sparse-features");
}

#[test]
fn pruned_weights_are_equivalent() {
    // 95% magnitude pruning makes the weights SPMM-eligible, exercising the
    // cached-CSR sparse-sparse update route.
    let mut dataset = Dataset::Cora.spec().generate_scaled(13, 0.12);
    let dense = dataset.features.to_dense();
    dataset.features = FeatureMatrix::Sparse(dynasparse_matrix::CsrMatrix::from_dense(&dense));
    let model = prune_model(
        &GnnModel::gcn(dataset.features.dim(), 16, dataset.spec.num_classes, 9),
        0.95,
    );
    assert_equivalent(&model, &dataset, "gcn/pruned");
}

#[test]
fn fully_dense_features_take_the_gemm_route_and_match() {
    let mut dataset = Dataset::Cora.spec().generate_scaled(17, 0.12);
    let (v, f) = dataset.features.shape();
    dataset.features =
        FeatureMatrix::Dense(dynasparse_matrix::DenseMatrix::from_fn(v, f, |r, c| {
            ((r * 31 + c * 7) % 13) as f32 * 0.1 + 0.05
        }));
    let model = GnnModel::gcn(f, 16, dataset.spec.num_classes, 21);
    assert_equivalent(&model, &dataset, "gcn/full-density");
}

#[test]
fn dispatch_strategies_price_identically_to_engine_wrapper() {
    // The one-shot Engine wrapper rides the same session machinery; its
    // dynamic strategy must still beat or match the static mappings.
    let dataset = Dataset::Cora.spec().generate_scaled(23, 0.12);
    let model = GnnModel::gcn(dataset.features.dim(), 16, dataset.spec.num_classes, 2);
    let eval = dynasparse::Engine::new(EngineOptions::default())
        .evaluate(&model, &dataset, &MappingStrategy::paper_strategies())
        .unwrap();
    let dynamic = eval.run(Strategy::Dynamic).unwrap();
    let s1 = eval.run(Strategy::Static1).unwrap();
    assert!(dynamic.total_cycles <= s1.total_cycles);
}
