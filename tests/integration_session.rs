//! Session reuse is lossless: serving a request from a reused
//! Planner/Session must produce bit-for-bit the numbers the one-shot
//! `Engine::evaluate` path produces for the same inputs — identical
//! latencies, primitive mixes, densities, overhead accounting and output
//! embeddings — for both the original features and mutated features over the
//! same graph topology.

use dynasparse::{
    DynasparseError, Engine, EngineOptions, Evaluation, InferenceReport, MappingStrategy, Planner,
};
use dynasparse_graph::{Dataset, FeatureMatrix, GraphDataset};
use dynasparse_matrix::DenseMatrix;
use dynasparse_model::{GnnModel, GnnModelKind};

fn setup(kind: GnnModelKind) -> (GnnModel, GraphDataset) {
    let ds = Dataset::Cora.spec().generate_scaled(33, 0.15);
    let model = GnnModel::standard(kind, ds.features.dim(), 16, ds.spec.num_classes, 5);
    (model, ds)
}

/// Compares every number the two paths share (everything except the
/// wall-clock compile time, which cannot be bit-stable across runs).
fn assert_reports_match(eval: &Evaluation, report: &InferenceReport) {
    assert_eq!(eval.data_movement_ms, report.data_movement_ms);
    assert_eq!(
        eval.density_trace.input_density,
        report.density_trace.input_density
    );
    assert_eq!(
        eval.density_trace.stages.len(),
        report.density_trace.stages.len()
    );
    for (a, b) in eval
        .density_trace
        .stages
        .iter()
        .zip(report.density_trace.stages.iter())
    {
        assert_eq!(a.layer, b.layer);
        assert_eq!(a.kernel, b.kernel);
        assert_eq!(a.op, b.op);
        assert_eq!(a.density, b.density);
    }
    assert_eq!(eval.runs.len(), report.runs.len());
    for (a, b) in eval.runs.iter().zip(report.runs.iter()) {
        assert_eq!(a.strategy, b.strategy);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.latency_ms, b.latency_ms);
        assert_eq!(a.average_utilization, b.average_utilization);
        assert_eq!(a.total_decisions(), b.total_decisions());
        assert_eq!(a.total_mix(), b.total_mix());
        assert_eq!(a.overhead.k2p_seconds, b.overhead.k2p_seconds);
        assert_eq!(a.overhead.scheduling_seconds, b.overhead.scheduling_seconds);
        assert_eq!(a.kernels.len(), b.kernels.len());
        for (ka, kb) in a.kernels.iter().zip(b.kernels.iter()) {
            assert_eq!(ka.kernel_id, kb.kernel_id);
            assert_eq!(ka.cycles, kb.cycles);
            assert_eq!(ka.utilization, kb.utilization);
            assert_eq!(ka.decisions, kb.decisions);
            assert_eq!(ka.mix, kb.mix);
            assert_eq!(ka.input_density, kb.input_density);
            assert_eq!(ka.output_density, kb.output_density);
        }
    }
    assert_eq!(
        eval.output_embeddings.to_dense().as_slice(),
        report.output_embeddings.to_dense().as_slice()
    );
}

/// Re-generates the dataset's topology with different features: every value
/// shifted and some rows zeroed, changing runtime densities substantially.
fn mutate_features(features: &FeatureMatrix) -> FeatureMatrix {
    let dense = features.to_dense();
    let (rows, cols) = dense.shape();
    FeatureMatrix::Dense(DenseMatrix::from_fn(rows, cols, |r, c| {
        if r % 7 == 0 {
            0.0
        } else {
            let v = dense.get(r, c);
            if v == 0.0 {
                ((r + c) % 11 == 0) as usize as f32 * 0.5
            } else {
                v + 0.25
            }
        }
    }))
}

#[test]
fn session_reuse_matches_one_shot_on_identical_features() {
    for kind in [GnnModelKind::Gcn, GnnModelKind::GraphSage] {
        let (model, ds) = setup(kind);
        let strategies = MappingStrategy::paper_strategies();

        let plan = Planner::new(EngineOptions::default())
            .plan(&model, &ds)
            .unwrap();
        let mut session = plan.session(&strategies);
        // Warm the session with an unrelated request first, then serve the
        // measured one: reuse must not leak state between requests.
        session.infer(&mutate_features(&ds.features)).unwrap();
        let report = session.infer(&ds.features).unwrap();

        let eval = Engine::new(EngineOptions::default())
            .evaluate(&model, &ds, &strategies)
            .unwrap();
        assert_reports_match(&eval, &report);
    }
}

#[test]
fn session_reuse_matches_one_shot_on_mutated_features() {
    let (model, ds) = setup(GnnModelKind::Gin);
    let strategies = MappingStrategy::paper_strategies();
    let mutated = mutate_features(&ds.features);

    // Session path: plan from the original dataset, then serve the mutated
    // request (same topology, new features — the serving scenario).
    let plan = Planner::new(EngineOptions::default())
        .plan(&model, &ds)
        .unwrap();
    let mut session = plan.session(&strategies);
    session.infer(&ds.features).unwrap();
    let report = session.infer(&mutated).unwrap();

    // One-shot path: a fresh dataset carrying the mutated features.
    let mut fresh = ds.clone();
    fresh.features = mutated;
    let eval = Engine::new(EngineOptions::default())
        .evaluate(&model, &fresh, &strategies)
        .unwrap();
    assert_reports_match(&eval, &report);
}

#[test]
fn compilation_happens_exactly_once_per_plan() {
    let (model, ds) = setup(GnnModelKind::Gcn);
    let plan = Planner::new(EngineOptions::default())
        .plan(&model, &ds)
        .unwrap();
    // The compile report is immutable plan state: its timing breakdown and
    // program are byte-stable across any number of served requests.
    let compile_ms = plan.compile_ms();
    let total_tasks = plan.program().total_tasks();
    let mut session = plan.session(&[MappingStrategy::Dynamic]);
    for _ in 0..5 {
        session.infer(&ds.features).unwrap();
    }
    assert_eq!(session.requests_served(), 5);
    assert_eq!(plan.compile_ms(), compile_ms);
    assert_eq!(plan.program().total_tasks(), total_tasks);
}

#[test]
fn stringly_model_errors_are_gone() {
    let (mut model, ds) = setup(GnnModelKind::Gcn);
    model.layers.clear();
    let err = Planner::new(EngineOptions::default())
        .plan(&model, &ds)
        .unwrap_err();
    // Typed end to end: DynasparseError::Model wraps ModelError::NoLayers.
    match err {
        DynasparseError::Model(dynasparse::ModelError::NoLayers) => {}
        other => panic!("expected Model(NoLayers), got {other:?}"),
    }
}
