//! Regression tests of the measured host cost model (the PR that replaced
//! the modeled Table IV regions in the host dispatcher).
//!
//! The recorded `BENCH_kernels.json` shows the bug this guards against: at
//! α = 0.1 × 0.1 over the 512 × 512 × 64 bench shape the region policy picks
//! SPMM (1.195 ms measured) while SpDMM measures 0.249 ms — a ~4.8x mispick
//! in the density band GCN aggregations live in.  The calibrated policy must
//! pick SpDMM there, and plans must share one process-wide fit by `Arc`.

use dynasparse::{CostModelKind, EngineOptions, HostExecutionOptions, MappingStrategy, Planner};
use dynasparse_graph::Dataset;
use dynasparse_matrix::{
    CalibratedPolicy, CalibrationConfig, CostModel, DispatchPolicy, HostCalibration, HostPrimitive,
    ProductShape,
};
use dynasparse_model::GnnModel;
use std::sync::Arc;

/// The shape and densities of the recorded mispick.
fn bench_point() -> (ProductShape, f64, f64) {
    (ProductShape::new(512, 512, 64), 0.1, 0.1)
}

/// Measures `[gemm, spdmm, spmm]` milliseconds at one grid point through
/// the calibration's own grid walk (same fixed seed as the sweep bench).
fn measure_point(shape: ProductShape, ax: f64, ay: f64) -> [f64; 3] {
    let config = CalibrationConfig {
        shapes: vec![(shape.m, shape.n, shape.d)],
        densities: vec![(ax, ay)],
        reps: 3,
        seed: 42,
    };
    let sample = HostCalibration::measure_grid(&config)[0];
    [sample.gemm_ms, sample.spdmm_ms, sample.spmm_ms]
}

#[test]
fn calibrated_policy_fixes_the_recorded_spmm_mispick() {
    let Some(calibration) = HostCalibration::shared() else {
        // DYNASPARSE_CALIBRATION=off: nothing to calibrate against.
        return;
    };
    let regions = DispatchPolicy::from_regions(16);
    let (shape, ax, ay) = bench_point();
    // The accelerator's regions model SPMM as cheapest here (both densities
    // below 2/16) — on optimized host builds that is the recorded ~4.8x
    // mispick.
    assert_eq!(regions.decide(ax, ay), HostPrimitive::Spmm);
    let calibrated = CalibratedPolicy::new(calibration, regions);
    let pick = calibrated.decide(shape, ax, ay);
    // The calibrated pick must be (within measurement noise of) the
    // measured-fastest primitive on the binary actually running — this
    // holds in debug builds too, where the kernel cost ratios differ.
    let measured = measure_point(shape, ax, ay);
    let best = measured.iter().cloned().fold(f64::INFINITY, f64::min);
    let pick_ms = match pick {
        HostPrimitive::Gemm => measured[0],
        HostPrimitive::SpDmm => measured[1],
        HostPrimitive::Spmm => measured[2],
        HostPrimitive::Skip => unreachable!("non-empty operands"),
    };
    assert!(
        pick_ms <= 2.0 * best,
        "calibrated pick {pick:?} measures {pick_ms:.3} ms but the best \
         primitive measures {best:.3} ms (gemm/spdmm/spmm = {measured:?})"
    );
    // In optimized builds the sparse-dense row kernel wins this band by a
    // wide margin and the pick must be SpDMM — the acceptance criterion of
    // the mispick fix.  (Debug builds flatten the SpDMM/SPMM gap, which is
    // exactly why the model measures instead of assuming.)
    if !cfg!(debug_assertions) {
        assert_eq!(
            pick,
            HostPrimitive::SpDmm,
            "optimized host must pick SpDMM at α = 0.1 × 0.1 \
             (gemm {:.4} ms, spdmm {:.4} ms, spmm {:.4} ms predicted)",
            calibrated.predict(HostPrimitive::Gemm, shape, ax, ay),
            calibrated.predict(HostPrimitive::SpDmm, shape, ax, ay),
            calibrated.predict(HostPrimitive::Spmm, shape, ax, ay),
        );
    }
}

#[test]
fn plans_share_one_process_wide_calibration() {
    if HostCalibration::shared().is_none() {
        return; // DYNASPARSE_CALIBRATION=off
    }
    let ds = Dataset::Cora.spec().generate_scaled(5, 0.1);
    let model = GnnModel::gcn(ds.features.dim(), 8, ds.spec.num_classes, 1);
    let plan_a = Planner::default().plan(&model, &ds).unwrap();
    let plan_b = Planner::default().plan(&model, &ds).unwrap();
    let (a, b) = (plan_a.calibration().unwrap(), plan_b.calibration().unwrap());
    assert!(
        Arc::ptr_eq(a, b),
        "every plan must share the process-wide measured fit, not re-measure"
    );
    // Serving sessions over a shared plan co-own the same fit (no clone).
    let shared = Planner::default().plan_shared(&model, &ds).unwrap();
    let before = Arc::strong_count(shared.calibration().unwrap());
    let s0 = shared.session_shared(&[MappingStrategy::Dynamic]);
    let s1 = shared.session_shared(&[MappingStrategy::Dynamic]);
    assert!(Arc::strong_count(shared.calibration().unwrap()) >= before);
    drop((s0, s1));
}

#[test]
fn regions_cost_model_disables_calibration() {
    let ds = Dataset::Cora.spec().generate_scaled(5, 0.1);
    let model = GnnModel::gcn(ds.features.dim(), 8, ds.spec.num_classes, 1);
    let options = EngineOptions::builder()
        .host(HostExecutionOptions {
            cost_model: CostModelKind::Regions,
            ..Default::default()
        })
        .build();
    let plan = Planner::new(options).plan(&model, &ds).unwrap();
    assert!(plan.calibration().is_none());
    // The regions plan still serves correctly (it is the A/B oracle).
    let mut session = plan.session(&[MappingStrategy::Dynamic]);
    session.infer(&ds.features).unwrap();
}

#[test]
fn calibrated_and_regions_sessions_are_bit_identical() {
    // The cost model only picks *which* host kernel runs; every route
    // accumulates in the same k-order, so embeddings cannot differ.
    let ds = Dataset::Cora.spec().generate_scaled(7, 0.15);
    let model = GnnModel::gcn(ds.features.dim(), 16, ds.spec.num_classes, 3);
    let mut outputs = Vec::new();
    for cost_model in [CostModelKind::Calibrated, CostModelKind::Regions] {
        let options = EngineOptions::builder()
            .host(HostExecutionOptions {
                cost_model,
                ..Default::default()
            })
            .build();
        let plan = Planner::new(options).plan(&model, &ds).unwrap();
        let mut session = plan.session(&[MappingStrategy::Dynamic]);
        outputs.push(session.infer(&ds.features).unwrap().output_embeddings);
    }
    assert_eq!(
        outputs[0].to_dense().as_slice(),
        outputs[1].to_dense().as_slice()
    );
}
