//! Concurrency correctness of the serving runtime.
//!
//! The load-bearing claim of `dynasparse-serve` is that concurrency is
//! *free* of numerical consequences: N worker threads serving one shared
//! `Arc<CompiledPlan>` produce bit-identical `InferenceReport`s to a single
//! serial session over the same request stream, regardless of worker count,
//! batching, or scheduling interleavings.  That holds because every request
//! is profiled and priced from freshly reset analyzer/scheduler state, and
//! the plan itself is immutable.

use dynasparse::{CompiledPlan, InferenceReport, MappingStrategy, Planner, Session};
use dynasparse_graph::{generators::dense_features, Dataset, FeatureMatrix};
use dynasparse_model::{GnnModel, GnnModelKind};
use dynasparse_serve::{DeviceDwell, PlanCache, ServeConfig, ServeRuntime};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn plan_fixture() -> (Arc<CompiledPlan>, FeatureMatrix) {
    let ds = Dataset::Cora.spec().generate_scaled(13, 0.1);
    let model = GnnModel::standard(
        GnnModelKind::Gcn,
        ds.features.dim(),
        16,
        ds.spec.num_classes,
        3,
    );
    let plan = Planner::default().plan_shared(&model, &ds).unwrap();
    (plan, ds.features)
}

/// A request stream with per-request feature matrices of varying densities,
/// so requests are distinguishable and each exercises the dynamic mapping
/// differently.
fn request_stream(plan: &CompiledPlan, n: usize) -> Vec<FeatureMatrix> {
    (0..n)
        .map(|i| {
            let density = 0.05 + 0.9 * (i as f64 / n.max(1) as f64);
            dense_features(
                plan.num_vertices(),
                plan.input_dim(),
                density,
                100 + i as u64,
            )
        })
        .collect()
}

/// Bit-level equality of two reports, down to every float.
fn assert_reports_identical(a: &InferenceReport, b: &InferenceReport, ctx: &str) {
    assert_eq!(a.request_index, b.request_index, "{ctx}: request_index");
    assert_eq!(
        a.data_movement_ms.to_bits(),
        b.data_movement_ms.to_bits(),
        "{ctx}: data_movement_ms"
    );
    assert_eq!(
        a.feature_movement_ms.to_bits(),
        b.feature_movement_ms.to_bits(),
        "{ctx}: feature_movement_ms"
    );
    assert_eq!(a.density_trace, b.density_trace, "{ctx}: density_trace");
    assert_eq!(
        a.output_embeddings, b.output_embeddings,
        "{ctx}: output embeddings"
    );
    assert_eq!(a.runs.len(), b.runs.len(), "{ctx}: run count");
    for (ra, rb) in a.runs.iter().zip(b.runs.iter()) {
        assert_eq!(ra.strategy, rb.strategy, "{ctx}: strategy order");
        assert_eq!(ra.total_cycles, rb.total_cycles, "{ctx}: cycles");
        assert_eq!(
            ra.latency_ms.to_bits(),
            rb.latency_ms.to_bits(),
            "{ctx}: latency"
        );
        assert_eq!(
            ra.end_to_end_ms.to_bits(),
            rb.end_to_end_ms.to_bits(),
            "{ctx}: end_to_end"
        );
        assert_eq!(
            ra.average_utilization.to_bits(),
            rb.average_utilization.to_bits(),
            "{ctx}: utilization"
        );
        assert_eq!(ra.kernels.len(), rb.kernels.len(), "{ctx}: kernel count");
        for (ka, kb) in ra.kernels.iter().zip(rb.kernels.iter()) {
            assert_eq!(
                (ka.kernel_id, ka.layer_id, ka.kind, ka.cycles, ka.decisions),
                (kb.kernel_id, kb.layer_id, kb.kind, kb.cycles, kb.decisions),
                "{ctx}: kernel identity/cost"
            );
            assert_eq!(ka.mix, kb.mix, "{ctx}: primitive mix");
            assert_eq!(
                ka.input_density.to_bits(),
                kb.input_density.to_bits(),
                "{ctx}: input density"
            );
            assert_eq!(
                ka.output_density.to_bits(),
                kb.output_density.to_bits(),
                "{ctx}: output density"
            );
        }
    }
}

/// Serial ground truth: one session, requests in submission order.
fn serial_reports(
    plan: &Arc<CompiledPlan>,
    strategies: &[MappingStrategy],
    stream: &[FeatureMatrix],
) -> Vec<InferenceReport> {
    let mut session = plan.session(strategies);
    stream.iter().map(|f| session.infer(f).unwrap()).collect()
}

#[test]
fn raw_threads_over_one_shared_plan_match_serial_bit_for_bit() {
    let (plan, _) = plan_fixture();
    let strategies = MappingStrategy::paper_strategies();
    let stream = request_stream(&plan, 12);
    let want = serial_reports(&plan, &strategies, &stream);

    // 4 threads, each with its own Session over the SAME Arc'd plan,
    // serving an interleaved slice of the stream.
    let workers: Vec<_> = (0..4)
        .map(|w| {
            let plan = Arc::clone(&plan);
            let mine: Vec<(usize, FeatureMatrix)> = stream
                .iter()
                .cloned()
                .enumerate()
                .filter(|(i, _)| i % 4 == w)
                .collect();
            thread::spawn(move || {
                let mut session = plan.session_shared(&MappingStrategy::paper_strategies());
                mine.into_iter()
                    .map(|(i, f)| (i, session.infer(&f).unwrap()))
                    .collect::<Vec<_>>()
            })
        })
        .collect();

    for worker in workers {
        for (i, mut got) in worker.join().unwrap() {
            // A thread-local session numbers its own requests; align with
            // the stream position like the serving runtime does.
            got.request_index = i;
            assert_reports_identical(&want[i], &got, &format!("request {i}"));
        }
    }
}

#[test]
fn serve_runtime_is_bit_identical_to_serial_serving() {
    let (plan, _) = plan_fixture();
    let strategies = [MappingStrategy::Dynamic, MappingStrategy::Static1];
    let stream = request_stream(&plan, 16);
    let want = serial_reports(&plan, &strategies, &stream);

    for (workers, max_batch) in [(1usize, 1usize), (4, 1), (4, 4)] {
        let runtime = ServeRuntime::start(
            Arc::clone(&plan),
            ServeConfig::default()
                .workers(workers)
                .max_batch(max_batch)
                .batch_deadline(Duration::from_millis(1))
                .strategies(&strategies),
        );
        let results = runtime.serve_all(stream.iter().cloned());
        let report = runtime.shutdown();
        assert_eq!(report.requests as usize, stream.len());
        for (i, result) in results.into_iter().enumerate() {
            let got = result.expect("request failed");
            assert_reports_identical(
                &want[i],
                &got,
                &format!("workers={workers} max_batch={max_batch} request {i}"),
            );
        }
    }
}

#[test]
fn micro_batching_coalesces_without_changing_results() {
    let (plan, _) = plan_fixture();
    let stream = request_stream(&plan, 8);
    let want = serial_reports(&plan, &[MappingStrategy::Dynamic], &stream);

    // One worker parked on a long first dwell lets the remaining requests
    // pile up, forcing at least one multi-request batch.
    let runtime = ServeRuntime::start(
        Arc::clone(&plan),
        ServeConfig::default()
            .workers(1)
            .max_batch(4)
            .batch_deadline(Duration::from_millis(20))
            .device_dwell(DeviceDwell::Modeled {
                strategy: MappingStrategy::Dynamic,
                scale: 10.0,
            }),
    );
    let results = runtime.serve_all(stream.iter().cloned());
    let report = runtime.shutdown();
    for (i, result) in results.into_iter().enumerate() {
        assert_reports_identical(&want[i], &result.unwrap(), &format!("request {i}"));
    }
    assert!(
        report.batches < report.requests,
        "with a single parked worker some batches must coalesce \
         ({} batches for {} requests)",
        report.batches,
        report.requests,
    );
    assert!(
        report.batch_histogram.iter().any(|bar| bar.size > 1),
        "batch histogram must show a coalesced batch"
    );
}

#[test]
fn plan_cache_hits_share_plans_across_serving_runtimes() {
    let ds = Dataset::Cora.spec().generate_scaled(13, 0.1);
    let model = GnnModel::standard(
        GnnModelKind::Gcn,
        ds.features.dim(),
        16,
        ds.spec.num_classes,
        3,
    );
    let mut cache = PlanCache::new(Planner::default(), 2);
    let plan_a = cache.get_or_plan(&model, &ds).unwrap();
    let plan_b = cache.get_or_plan(&model, &ds).unwrap();
    assert!(Arc::ptr_eq(&plan_a, &plan_b));
    assert_eq!(cache.stats().hits, 1);
    assert_eq!(cache.stats().misses, 1);

    // The same cached plan backs two runtimes in sequence; both serve the
    // same stream identically.
    let stream = request_stream(&plan_a, 4);
    let want = serial_reports(&plan_a, &[MappingStrategy::Dynamic], &stream);
    for plan in [plan_a, plan_b] {
        let runtime = ServeRuntime::start(plan, ServeConfig::default().workers(2));
        let results = runtime.serve_all(stream.iter().cloned());
        runtime.shutdown();
        for (i, r) in results.into_iter().enumerate() {
            assert_reports_identical(&want[i], &r.unwrap(), &format!("cached plan request {i}"));
        }
    }
}

#[test]
fn session_strategies_slice_and_requests_served_survive_the_refactor() {
    let (plan, features) = plan_fixture();
    let strategies = MappingStrategy::paper_strategies();
    let mut session: Session<'_> = plan.session(&strategies);
    assert_eq!(session.strategies(), &strategies[..]);
    session.infer(&features).unwrap();
    assert_eq!(session.requests_served(), 1);
}

#[test]
fn multi_worker_telemetry_merge_is_complete_and_deterministic() {
    use dynasparse_telemetry::{CounterId, Registry, TelemetryLevel};

    let (plan, _) = plan_fixture();
    let stream = request_stream(&plan, 9);

    // Ground truth for kernels-per-request: one serial request through a
    // session publishing into its own trace-level registry.
    let probe_registry = Arc::new(Registry::new(TelemetryLevel::Trace));
    let mut probe = plan.session(&[MappingStrategy::Dynamic]);
    probe.set_telemetry(Arc::clone(&probe_registry));
    probe.infer(&stream[0]).unwrap();
    let kernels_per_request = probe_registry.counter(CounterId::KernelSpans);
    assert!(
        kernels_per_request > 0,
        "a dispatched request must record kernel spans"
    );

    // Two identical runs with fresh injected registries: the merged view
    // must be complete (no span lost across worker shards) and the totals
    // deterministic (independent of worker scheduling).
    let mut totals = Vec::new();
    for run in 0..2 {
        let registry = Arc::new(Registry::new(TelemetryLevel::Trace));
        let runtime = ServeRuntime::start(
            Arc::clone(&plan),
            ServeConfig::default()
                .workers(3)
                .max_batch(1)
                .telemetry(Arc::clone(&registry)),
        );
        let results = runtime.serve_all(stream.iter().cloned());
        runtime.shutdown();
        for r in results {
            r.expect("request failed");
        }

        let expected_spans = stream.len() as u64 * kernels_per_request;
        let per_shard = registry.counter_per_shard(CounterId::KernelSpans);
        assert_eq!(
            per_shard.iter().sum::<u64>(),
            expected_spans,
            "run {run}: per-worker shard counts must merge to requests x kernels/request \
             (shards: {per_shard:?})"
        );
        assert_eq!(registry.counter(CounterId::KernelSpans), expected_spans);
        assert_eq!(
            registry.counter(CounterId::ServeRequests),
            stream.len() as u64
        );
        assert_eq!(
            registry.counter(CounterId::SessionRequests),
            stream.len() as u64
        );

        totals.push((
            registry.counter(CounterId::KernelSpans),
            registry.counter(CounterId::DispatchGemm),
            registry.counter(CounterId::DispatchSpdmm),
            registry.counter(CounterId::DispatchSpmm),
            registry.counter(CounterId::DispatchSkip),
        ));
    }
    assert_eq!(
        totals[0], totals[1],
        "merged telemetry totals must not depend on worker scheduling"
    );
}

#[test]
fn serving_workers_share_the_plans_measured_calibration() {
    // The host micro-calibration is planned once and `Arc`-shared: spinning
    // up a multi-worker runtime must not re-measure it per worker, and the
    // served results stay bit-identical to a serial session (the cost model
    // only picks which host kernel runs).
    //
    // The leak-freedom side of this claim (`Arc::strong_count` returning to
    // its pre-runtime value) lives in `tests/calibration_sharing.rs`: the
    // count is on the *process-global* calibration, so asserting it here
    // would race against sibling tests planning concurrently when this
    // binary runs with multiple test threads.
    let (plan, _) = plan_fixture();
    let Some(calibration) = plan.calibration() else {
        return; // DYNASPARSE_CALIBRATION=off
    };
    assert!(calibration.is_valid());
    let stream = request_stream(&plan, 6);
    let want = serial_reports(&plan, &[MappingStrategy::Dynamic], &stream);
    let runtime = ServeRuntime::start(Arc::clone(&plan), ServeConfig::default().workers(3));
    let results = runtime.serve_all(stream.iter().cloned());
    for (i, r) in results.into_iter().enumerate() {
        assert_reports_identical(&want[i], &r.unwrap(), &format!("calibrated request {i}"));
    }
    runtime.shutdown();
}
