//! Cross-crate functional correctness: the detailed accelerator datapath
//! simulations, the host reference kernels and the GNN reference executor
//! must all agree on the numerical result, independent of which primitive a
//! block product is mapped to.

use dynasparse_accel::{AcceleratorConfig, ComputationCore, Primitive};
use dynasparse_graph::{generators, normalized_adjacency, AggregatorKind, Dataset, FeatureMatrix};
use dynasparse_matrix::format::FormattedBlock;
use dynasparse_matrix::ops::gemm_reference;
use dynasparse_matrix::random::random_dense;
use dynasparse_matrix::{CooMatrix, CsrMatrix};
use dynasparse_model::{GnnModel, GnnModelKind, ReferenceExecutor};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn all_primitives_compute_the_same_block_product() {
    let core = ComputationCore::new(AcceleratorConfig::default());
    let mut rng = StdRng::seed_from_u64(1);
    for &(dx, dy) in &[(1.0, 1.0), (0.3, 0.9), (0.05, 0.05), (0.0, 0.5)] {
        let x = random_dense(&mut rng, 48, 64, dx);
        let y = random_dense(&mut rng, 64, 40, dy);
        let want = gemm_reference(&x, &y).unwrap();
        for primitive in Primitive::all() {
            let got = core.execute_pair_detailed(
                primitive,
                &FormattedBlock::Dense(x.clone()),
                &FormattedBlock::Dense(y.clone()),
            );
            assert!(
                got.result.approx_eq(&want, 1e-3),
                "primitive {} disagrees at densities ({dx}, {dy})",
                primitive.label()
            );
        }
    }
}

#[test]
fn block_decomposed_aggregation_matches_monolithic_spmm() {
    // Execute an Aggregate kernel the way the accelerator does — block by
    // block with COO partitions — and compare against the CSR executor.
    let graph = generators::power_law_graph(
        "it",
        &generators::PowerLawConfig {
            num_vertices: 200,
            num_edges: 900,
            exponent: 2.3,
            seed: 5,
        },
    );
    let adj = normalized_adjacency(graph.adjacency(), AggregatorKind::GcnSymmetric);
    let h = generators::dense_features(200, 24, 0.4, 9).to_dense();
    let want = adj.spmm_dense(&h).unwrap();

    let n1 = 64;
    let n2 = 24;
    let v_blocks = 200usize.div_ceil(n1);
    let mut got = dynasparse_matrix::DenseMatrix::zeros(v_blocks * n1, n2);
    for i in 0..v_blocks {
        for j in 0..v_blocks {
            let a_block = adj.block_coo(i * n1, (i + 1) * n1, j * n1, (j + 1) * n1);
            let h_block = h.submatrix_padded(j * n1, (j + 1) * n1, 0, n2);
            let partial = dynasparse_matrix::ops::spdmm_reference(&a_block, &h_block).unwrap();
            for r in 0..n1 {
                for c in 0..n2 {
                    got.add_assign_at(i * n1 + r, c, partial.get(r, c));
                }
            }
        }
    }
    let got = got.submatrix_padded(0, 200, 0, n2);
    assert!(got.approx_eq(&want, 1e-3));
}

#[test]
fn sparse_and_dense_feature_paths_agree_for_the_same_model() {
    // NELL-style sparse feature storage must not change the inference result.
    let graph = generators::power_law_graph(
        "it2",
        &generators::PowerLawConfig {
            num_vertices: 80,
            num_edges: 320,
            exponent: 2.2,
            seed: 8,
        },
    );
    let dense_features = generators::dense_features(80, 50, 0.1, 3);
    let sparse_features = FeatureMatrix::Sparse(CsrMatrix::from_dense(&dense_features.to_dense()));
    let model = GnnModel::standard(GnnModelKind::Gcn, 50, 8, 4, 2);
    let exec = ReferenceExecutor::new(&model, &graph);
    let out_dense = exec.forward(&dense_features).unwrap().to_dense();
    let out_sparse = exec.forward(&sparse_features).unwrap().to_dense();
    assert!(out_dense.approx_eq(&out_sparse, 1e-3));
}

#[test]
fn dataset_generation_matches_published_statistics_for_small_graphs() {
    for dataset in [Dataset::Cora, Dataset::CiteSeer] {
        let spec = dataset.spec();
        let ds = spec.generate(1);
        assert_eq!(ds.num_vertices(), spec.num_vertices);
        assert_eq!(ds.num_edges(), spec.num_edges);
        let rel_err = (ds.feature_density() - spec.feature_density).abs() / spec.feature_density;
        assert!(
            rel_err < 0.25,
            "{}: feature density off by {rel_err}",
            dataset.name()
        );
    }
}

#[test]
fn coo_round_trips_preserve_block_products() {
    let mut rng = StdRng::seed_from_u64(33);
    let x = random_dense(&mut rng, 32, 32, 0.2);
    let y = random_dense(&mut rng, 32, 16, 0.6);
    let want = gemm_reference(&x, &y).unwrap();
    let x_coo = CooMatrix::from_dense(&x);
    let got = dynasparse_matrix::ops::spdmm_reference(&x_coo, &y).unwrap();
    assert!(got.approx_eq(&want, 1e-4));
    // Round-trip through dense again.
    let x_back = x_coo.to_dense();
    assert!(gemm_reference(&x_back, &y).unwrap().approx_eq(&want, 1e-4));
}
