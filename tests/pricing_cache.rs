//! Pricing-equivalence harness for the profile-keyed pricing cache.
//!
//! The cache memoizes `KernelAnalysis` values keyed on quantized sparsity
//! profiles, so its correctness contract has three parts, each proven here:
//!
//! 1. **Embeddings are never touched.**  The cache sits on the strategy
//!    pricing pass only; functional outputs are bit-identical across
//!    `Off`/`Exact`/`Bucketed` for any request stream.
//! 2. **Exact mode is bit-identical pricing.**  A hit replays precisely the
//!    analysis an uncached session would recompute.
//! 3. **Bucketed mode is deterministic and bounded.**  Cached pricing is a
//!    pure function of the request (independent of cache state and request
//!    order — the property that keeps serial vs. multi-worker serving
//!    bit-identical), and the bucket grid's quarter-octave density
//!    distortion translates into a bounded predicted-cost ratio against
//!    uncached pricing.
//!
//! Invalidation (rebind across topologies, content-addressed re-hits) and
//! batch amortization ride on the same counters.  Drift-recalibration
//! invalidation lives in `tests/pricing_invalidation.rs` (own binary — it
//! pins `DYNASPARSE_CALIBRATION`).

use dynasparse::{
    EngineOptions, HostExecutionOptions, InferenceReport, MappingStrategy, ModelTemplate, Planner,
    PricingCacheMode, Registry, TelemetryLevel,
};
use dynasparse_graph::generators::dense_features;
use dynasparse_graph::{Dataset, FeatureMatrix, NeighborSampler};
use dynasparse_model::{GnnModel, GnnModelKind};
use dynasparse_telemetry::CounterId;
use std::sync::Arc;

/// Engine options with the given cache mode and online recalibration pinned
/// off (a drift-triggered flush would make hit/miss counts timing-dependent).
fn options(mode: PricingCacheMode) -> EngineOptions {
    EngineOptions::builder()
        .host(HostExecutionOptions {
            recalibrate: false,
            pricing_cache: mode,
            ..Default::default()
        })
        .build()
}

/// Asserts two reports priced the request identically: same strategies, same
/// accelerator cycles, same decisions and primitive mixes, same densities.
/// (Wall-clock overhead fields are measured host time and excluded.)
fn assert_same_pricing(a: &InferenceReport, b: &InferenceReport, context: &str) {
    assert_eq!(a.runs.len(), b.runs.len(), "{context}: run count");
    for (ra, rb) in a.runs.iter().zip(&b.runs) {
        assert_eq!(ra.strategy, rb.strategy, "{context}");
        assert_eq!(
            ra.total_cycles, rb.total_cycles,
            "{context}: {:?} total cycles",
            ra.strategy
        );
        assert_eq!(
            ra.latency_ms.to_bits(),
            rb.latency_ms.to_bits(),
            "{context}: {:?} latency",
            ra.strategy
        );
        assert_eq!(
            ra.average_utilization.to_bits(),
            rb.average_utilization.to_bits(),
            "{context}: {:?} utilization",
            ra.strategy
        );
        assert_eq!(ra.kernels.len(), rb.kernels.len(), "{context}");
        for (ka, kb) in ra.kernels.iter().zip(&rb.kernels) {
            assert_eq!(ka.kernel_id, kb.kernel_id, "{context}");
            assert_eq!(ka.cycles, kb.cycles, "{context}: kernel {}", ka.kernel_id);
            assert_eq!(
                ka.decisions, kb.decisions,
                "{context}: kernel {}",
                ka.kernel_id
            );
            assert_eq!(ka.mix, kb.mix, "{context}: kernel {}", ka.kernel_id);
            assert_eq!(
                ka.input_density.to_bits(),
                kb.input_density.to_bits(),
                "{context}: kernel {}",
                ka.kernel_id
            );
            assert_eq!(
                ka.output_density.to_bits(),
                kb.output_density.to_bits(),
                "{context}: kernel {}",
                ka.kernel_id
            );
        }
    }
}

/// (hit, miss, evict) counter snapshot.
fn cache_counters(registry: &Registry) -> (u64, u64, u64) {
    (
        registry.counter(CounterId::PricingHit),
        registry.counter(CounterId::PricingMiss),
        registry.counter(CounterId::PricingEvict),
    )
}

#[test]
fn embeddings_are_bit_identical_across_cache_modes() {
    let ds = Dataset::Cora.spec().generate_scaled(5, 0.2);
    let model = GnnModel::standard(
        GnnModelKind::Gcn,
        ds.features.dim(),
        16,
        ds.spec.num_classes,
        3,
    );
    let (v, f) = (ds.features.num_vertices(), ds.features.dim());
    // A density sweep, served twice so the second pass replays cache hits.
    let mut requests = vec![
        ds.features.clone(),
        dense_features(v, f, 0.05, 1),
        dense_features(v, f, 0.4, 2),
        dense_features(v, f, 0.95, 3),
    ];
    requests.extend(requests.clone());

    let strategies = MappingStrategy::paper_strategies();
    let mut reports: Vec<Vec<InferenceReport>> = Vec::new();
    for mode in [
        PricingCacheMode::Off,
        PricingCacheMode::Exact,
        PricingCacheMode::Bucketed,
    ] {
        let plan = Planner::new(options(mode)).plan(&model, &ds).unwrap();
        let mut session = plan.session(&strategies);
        assert_eq!(session.pricing_mode(), mode);
        reports.push(requests.iter().map(|r| session.infer(r).unwrap()).collect());
    }
    let (off, rest) = reports.split_first().unwrap();
    for (mode_idx, cached) in rest.iter().enumerate() {
        for (i, (o, c)) in off.iter().zip(cached).enumerate() {
            assert_eq!(
                o.output_embeddings, c.output_embeddings,
                "request {i} embeddings must not depend on cache mode {mode_idx}"
            );
        }
    }
}

#[test]
fn exact_mode_hits_replay_bit_identical_pricing() {
    let ds = Dataset::Cora.spec().generate_scaled(7, 0.2);
    let model = GnnModel::standard(
        GnnModelKind::Gcn,
        ds.features.dim(),
        16,
        ds.spec.num_classes,
        3,
    );
    let strategies = MappingStrategy::paper_strategies();

    let off_plan = Planner::new(options(PricingCacheMode::Off))
        .plan(&model, &ds)
        .unwrap();
    let mut off_session = off_plan.session(&strategies);
    let fresh = off_session.infer(&ds.features).unwrap();

    let registry = Arc::new(Registry::new(TelemetryLevel::Counters));
    let exact_plan = Planner::new(options(PricingCacheMode::Exact))
        .plan(&model, &ds)
        .unwrap();
    let mut session = exact_plan.session(&strategies);
    session.set_telemetry(Arc::clone(&registry));

    let cold = session.infer(&ds.features).unwrap();
    let (h1, m1, _) = cache_counters(&registry);
    assert_eq!(h1, 0, "a cold cache cannot hit");
    assert!(m1 > 0, "a cold request must record misses");

    let warm = session.infer(&ds.features).unwrap();
    let (h2, m2, _) = cache_counters(&registry);
    assert_eq!(m2, m1, "an exact repeat must add no misses");
    assert_eq!(
        h2, m1,
        "every kernel-strategy lookup must hit on the repeat"
    );

    // Off-mode, cold exact-mode and warm (all-hit) exact-mode pricing must
    // agree to the bit.
    assert_same_pricing(&fresh, &cold, "off vs exact-cold");
    assert_same_pricing(&fresh, &warm, "off vs exact-warm");
    assert_eq!(fresh.output_embeddings, warm.output_embeddings);
}

#[test]
fn bucketed_pricing_is_independent_of_cache_state() {
    // The determinism invariant behind multi-worker bit-identity: what a
    // bucketed session reports for a request must not depend on what it
    // served before (which keys happen to be resident, in which order).
    let ds = Dataset::Cora.spec().generate_scaled(9, 0.2);
    let model = GnnModel::standard(
        GnnModelKind::Gcn,
        ds.features.dim(),
        16,
        ds.spec.num_classes,
        3,
    );
    let (v, f) = (ds.features.num_vertices(), ds.features.dim());
    let probe = dense_features(v, f, 0.3, 42);
    let strategies = [MappingStrategy::Dynamic, MappingStrategy::Static1];
    let plan = Planner::new(options(PricingCacheMode::Bucketed))
        .plan(&model, &ds)
        .unwrap();

    // Session A serves the probe cold; session B first wanders through a
    // density sweep (warming unrelated and *nearby* buckets), then serves
    // the same probe from a populated cache.
    let mut cold = plan.session(&strategies);
    let cold_report = cold.infer(&probe).unwrap();

    let mut warmed = plan.session(&strategies);
    for (i, d) in [0.02, 0.28, 0.31, 0.6, 0.97].iter().enumerate() {
        warmed.infer(&dense_features(v, f, *d, i as u64)).unwrap();
    }
    let warm_report = warmed.infer(&probe).unwrap();

    assert_same_pricing(&cold_report, &warm_report, "cold vs warmed cache");
    assert_eq!(cold_report.output_embeddings, warm_report.output_embeddings);

    // And repeats inside one session replay identically too.
    let again = warmed.infer(&probe).unwrap();
    assert_same_pricing(&warm_report, &again, "warm vs repeat");
}

#[test]
fn bucketed_cost_distortion_is_bounded_at_bucket_edges() {
    // A bucketed hit prices the bucket's representative profile, whose
    // per-block density is within 2^(1/4) ≈ 1.19x of the true one.  The
    // priced accelerator cycles must stay within a generous multiple of
    // uncached pricing across the density range — including awkward
    // densities that land right at bucket edges.
    const BOUND: f64 = 1.6;
    let ds = Dataset::Cora.spec().generate_scaled(11, 0.2);
    let model = GnnModel::standard(
        GnnModelKind::Gcn,
        ds.features.dim(),
        16,
        ds.spec.num_classes,
        3,
    );
    let (v, f) = (ds.features.num_vertices(), ds.features.dim());
    let strategies = [MappingStrategy::Dynamic, MappingStrategy::Static2];

    let off_plan = Planner::new(options(PricingCacheMode::Off))
        .plan(&model, &ds)
        .unwrap();
    let bucketed_plan = Planner::new(options(PricingCacheMode::Bucketed))
        .plan(&model, &ds)
        .unwrap();
    let mut off = off_plan.session(&strategies);
    let mut bucketed = bucketed_plan.session(&strategies);

    for (i, d) in [0.01, 0.07, 0.21, 0.35, 0.5, 0.71, 0.84, 1.0]
        .iter()
        .enumerate()
    {
        let request = dense_features(v, f, *d, 100 + i as u64);
        let fresh = off.infer(&request).unwrap();
        let cached = bucketed.infer(&request).unwrap();
        assert_eq!(fresh.output_embeddings, cached.output_embeddings);
        for (rf, rc) in fresh.runs.iter().zip(&cached.runs) {
            let ratio = rc.total_cycles as f64 / rf.total_cycles.max(1) as f64;
            assert!(
                (1.0 / BOUND..=BOUND).contains(&ratio),
                "density {d} {:?}: bucketed {} vs fresh {} cycles (ratio {ratio:.3})",
                rf.strategy,
                rc.total_cycles,
                rf.total_cycles
            );
        }
    }
}

#[test]
fn rebind_across_topologies_separates_and_content_rehits() {
    // One rebinding session over a template: pricing keys are
    // content-addressed on the instantiated plan's static operands, so a
    // different subgraph can never hit stale entries, while re-instantiating
    // an identical subgraph hits the warm ones again — across the rebind.
    let full = Dataset::Cora.spec().generate_scaled(13, 0.15);
    let model = GnnModel::gcn(full.features.dim(), 8, full.spec.num_classes, 2);
    let template =
        ModelTemplate::compile_shared(&model, options(PricingCacheMode::Bucketed)).unwrap();

    let sample = |roots: &[u32]| {
        let sub = NeighborSampler::new([8, 4], 5).sample(&full.graph, roots);
        let features = sub.extract_features(&full.features);
        (sub.into_graph(), features)
    };
    let (graph_a, features_a) = sample(&[1]);
    let (graph_b, features_b) = sample(&[2, 3]);

    let registry = Arc::new(Registry::new(TelemetryLevel::Counters));
    let plan_a = template
        .instantiate(&graph_a, &features_a)
        .unwrap()
        .into_plan();
    let mut session = plan_a.session_shared(&[MappingStrategy::Dynamic]);
    session.set_telemetry(Arc::clone(&registry));

    session.infer(&features_a).unwrap();
    session.infer(&features_a).unwrap();
    let (h1, m1, _) = cache_counters(&registry);
    assert!(h1 > 0 && m1 > 0, "repeat over one instance must hit");

    // Different topology: every lookup must miss (no false sharing).
    let plan_b = template
        .instantiate(&graph_b, &features_b)
        .unwrap()
        .into_plan();
    session.rebind(plan_b);
    session.infer(&features_b).unwrap();
    let (h2, m2, _) = cache_counters(&registry);
    assert_eq!(
        h2, h1,
        "a different subgraph must not hit the previous topology's pricing"
    );
    assert!(m2 > m1);

    // Same topology re-instantiated (new Arc, equal content): hits again.
    let plan_a2 = template
        .instantiate(&graph_a, &features_a)
        .unwrap()
        .into_plan();
    session.rebind(plan_a2);
    session.infer(&features_a).unwrap();
    let (h3, m3, _) = cache_counters(&registry);
    assert!(
        h3 > h2,
        "an identical re-instantiated subgraph must re-hit the warm entries"
    );
    assert_eq!(
        m3, m2,
        "content-addressed keys must add no misses on an identical topology"
    );
}

#[test]
fn tiny_capacity_evicts_and_still_prices_correctly() {
    let ds = Dataset::Cora.spec().generate_scaled(17, 0.2);
    let model = GnnModel::standard(
        GnnModelKind::Gcn,
        ds.features.dim(),
        16,
        ds.spec.num_classes,
        3,
    );
    let (v, f) = (ds.features.num_vertices(), ds.features.dim());
    let registry = Arc::new(Registry::new(TelemetryLevel::Counters));
    let plan = Planner::new(options(PricingCacheMode::Bucketed))
        .plan(&model, &ds)
        .unwrap();
    let mut session = plan.session(&[MappingStrategy::Dynamic]);
    session.set_telemetry(Arc::clone(&registry));
    // 8 slots against ~6 kernels x 5 request classes: steady thrash.
    session.set_pricing_capacity(8);

    let off_plan = Planner::new(options(PricingCacheMode::Off))
        .plan(&model, &ds)
        .unwrap();
    let mut off = off_plan.session(&[MappingStrategy::Dynamic]);

    let classes: Vec<FeatureMatrix> = [0.02f64, 0.1, 0.3, 0.6, 0.9]
        .iter()
        .enumerate()
        .map(|(i, d)| dense_features(v, f, *d, 200 + i as u64))
        .collect();
    for _ in 0..3 {
        for request in &classes {
            let cached = session.infer(request).unwrap();
            let fresh = off.infer(request).unwrap();
            assert_eq!(cached.output_embeddings, fresh.output_embeddings);
        }
    }
    let (_, _, evictions) = cache_counters(&registry);
    assert!(
        evictions > 0,
        "cycling distinct request classes through 8 slots must evict"
    );
}

#[test]
fn fused_batches_amortize_pricing_across_same_key_requests() {
    let ds = Dataset::Cora.spec().generate_scaled(19, 0.2);
    let model = GnnModel::standard(
        GnnModelKind::Gcn,
        ds.features.dim(),
        16,
        ds.spec.num_classes,
        3,
    );
    let registry = Arc::new(Registry::new(TelemetryLevel::Counters));
    let plan = Planner::new(options(PricingCacheMode::Bucketed))
        .plan(&model, &ds)
        .unwrap();
    let mut session = plan.session(&[MappingStrategy::Dynamic]);
    session.set_telemetry(Arc::clone(&registry));
    session.reserve_batch(4);

    let batch: Vec<FeatureMatrix> = (0..4).map(|_| ds.features.clone()).collect();
    let reports = session.infer_batch(&batch).unwrap();
    assert_eq!(reports.len(), 4);
    let (hits, misses, _) = cache_counters(&registry);
    assert!(
        misses > 0,
        "the batch's first record prices each kernel once"
    );
    assert_eq!(
        hits,
        3 * misses,
        "the 3 equal sibling requests must reuse the first record's pass"
    );
    // Amortized pricing must not leak into the reports: every sibling's runs
    // are identical, and identical to a per-request serve.
    for r in &reports[1..] {
        assert_same_pricing(&reports[0], r, "batch siblings");
    }
    let solo = plan
        .session(&[MappingStrategy::Dynamic])
        .infer(&ds.features)
        .unwrap();
    assert_same_pricing(&solo, &reports[0], "solo vs fused batch");
    assert_eq!(solo.output_embeddings, reports[0].output_embeddings);
}
