//! Cross-crate behaviour of the mapping strategies on full engine runs: the
//! relationships the paper's evaluation hinges on must hold end to end, not
//! just at the single-pair level.

use dynasparse::{Engine, EngineOptions, MappingStrategy};
use dynasparse_graph::Dataset;
use dynasparse_model::{prune_model, GnnModel, GnnModelKind};

fn evaluate(
    kind: GnnModelKind,
    dataset: Dataset,
    scale: f64,
    weight_sparsity: f64,
) -> dynasparse::Evaluation {
    let ds = dataset.spec().generate_scaled(21, scale);
    let mut model = GnnModel::standard(kind, ds.features.dim(), 16, ds.spec.num_classes, 4);
    if weight_sparsity > 0.0 {
        model = prune_model(&model, weight_sparsity);
    }
    Engine::new(EngineOptions::default())
        .evaluate(&model, &ds, &MappingStrategy::paper_strategies())
        .expect("evaluation failed")
}

#[test]
fn dynamic_wins_or_ties_on_every_model_and_small_dataset() {
    for kind in GnnModelKind::all() {
        for dataset in [Dataset::Cora, Dataset::CiteSeer] {
            let eval = evaluate(kind, dataset, 0.25, 0.0);
            let dynamic = eval.run(MappingStrategy::Dynamic).unwrap().latency_ms;
            for s in [MappingStrategy::Static1, MappingStrategy::Static2] {
                let other = eval.run(s).unwrap().latency_ms;
                assert!(
                    dynamic <= other * 1.001,
                    "{} on {}: dynamic {dynamic} vs {} {other}",
                    kind.name(),
                    dataset.name(),
                    s.label()
                );
            }
        }
    }
}

#[test]
fn gcn_speedup_over_s1_is_large_when_input_features_are_sparse() {
    // CiteSeer input features are 0.85% dense; the paper reports 41x at full
    // scale.  At quarter scale with a load-bound memory model we still expect
    // a substantial factor.
    let eval = evaluate(GnnModelKind::Gcn, Dataset::CiteSeer, 0.25, 0.0);
    let so_s1 = eval
        .speedup(MappingStrategy::Static1, MappingStrategy::Dynamic)
        .unwrap();
    assert!(so_s1 > 3.0, "SO-S1 = {so_s1}");
}

#[test]
fn weight_pruning_monotonically_helps_dynamic_relative_to_s2() {
    let mut last = 0.0;
    for sparsity in [0.0, 0.5, 0.9] {
        let eval = evaluate(GnnModelKind::Gin, Dataset::Cora, 0.25, sparsity);
        let so_s2 = eval
            .speedup(MappingStrategy::Static2, MappingStrategy::Dynamic)
            .unwrap();
        assert!(
            so_s2 >= last * 0.95,
            "SO-S2 should not shrink as weights get sparser: {last} -> {so_s2}"
        );
        last = so_s2;
    }
}

#[test]
fn static_strategies_map_kernels_the_way_prior_accelerators_do() {
    let eval = evaluate(GnnModelKind::Gcn, Dataset::Cora, 0.2, 0.0);
    let s1 = eval.run(MappingStrategy::Static1).unwrap();
    let s2 = eval.run(MappingStrategy::Static2).unwrap();
    // S1 (HyGCN/BoostGCN): Aggregate -> SpDMM, Update -> GEMM, nothing skipped.
    for k in &s1.kernels {
        assert_eq!(k.mix.skipped, 0);
        match k.kind {
            dynasparse_compiler::KernelKind::Aggregate => {
                assert_eq!(k.mix.gemm, 0);
                assert_eq!(k.mix.spmm, 0);
                assert_eq!(k.mix.spdmm, k.mix.total());
            }
            dynasparse_compiler::KernelKind::Update => {
                assert_eq!(k.mix.spdmm, 0);
                assert_eq!(k.mix.gemm, k.mix.total());
            }
        }
    }
    // S2 (AWB-GCN): everything SpDMM, nothing skipped.
    for k in &s2.kernels {
        assert_eq!(k.mix.skipped, 0);
        assert_eq!(k.mix.spdmm, k.mix.total());
    }
    // Dynamic skips the empty feature partitions of the sparse input.
    let dynamic = eval.run(MappingStrategy::Dynamic).unwrap();
    assert!(dynamic.total_mix().skipped > 0);
}

#[test]
fn functional_output_is_identical_across_strategies() {
    // The mapping strategy affects only the latency model, never the
    // numerical result (all primitives compute the same product).
    let eval = evaluate(GnnModelKind::GraphSage, Dataset::Cora, 0.2, 0.0);
    // One functional pass serves all strategies, so the output embeddings and
    // the density trace are shared; check they are self-consistent.
    assert_eq!(
        eval.density_trace.stages.len(),
        eval.run(MappingStrategy::Dynamic).unwrap().kernels.len()
    );
    assert_eq!(eval.output_embeddings.dim(), 7);
}
