//! Fault-injection proof of the serve runtime's traffic-control contract:
//! **every submitted ticket resolves** — to a result or a typed error,
//! never lost, never hung — across worker panic + respawn, deadline shed,
//! queue-full rejection, load shedding, circuit-breaker drain, and
//! deadline-bounded shutdown.
//!
//! The panics are injected through `SubmitOptions::panic_at_kernel`, which
//! arms the session's kernel-path fault hook for exactly one request: the
//! unwind happens *inside* the forward pass, with arena and scratch state
//! partially written, which is precisely the state the supervisor's
//! `rebuild_after_panic` respawn must recover from.

use dynasparse::{CompiledPlan, MappingStrategy, Planner};
use dynasparse_graph::{generators::dense_features, Dataset, FeatureMatrix};
use dynasparse_model::{GnnModel, GnnModelKind};
use dynasparse_serve::{
    DeviceDwell, Priority, ServeConfig, ServeError, ServeRuntime, SubmitOptions, Ticket,
};
use std::sync::Arc;
use std::time::Duration;

fn plan_fixture() -> (Arc<CompiledPlan>, FeatureMatrix) {
    let ds = Dataset::Cora.spec().generate_scaled(23, 0.08);
    let model = GnnModel::standard(
        GnnModelKind::Gcn,
        ds.features.dim(),
        8,
        ds.spec.num_classes,
        5,
    );
    let plan = Planner::default().plan_shared(&model, &ds).unwrap();
    (plan, ds.features)
}

/// Worker panic + respawn: in a multi-request batch with one poisoned
/// member, only the poisoned ticket fails, with the panic message; the
/// worker respawns and keeps serving bit-identically.
#[test]
fn poisoned_request_fails_alone_and_worker_respawns() {
    let (plan, features) = plan_fixture();
    let runtime = ServeRuntime::start(
        Arc::clone(&plan),
        ServeConfig::default()
            .workers(1)
            .max_batch(8)
            .batch_deadline(Duration::from_millis(20)),
    );

    // Serial reference for bit-identity of the survivors.
    let mut serial = plan.session(&[MappingStrategy::Dynamic]);
    let reference = serial.infer(&features).unwrap();

    let mut tickets = Vec::new();
    for i in 0..6 {
        let options = if i == 3 {
            SubmitOptions::default().panic_at_kernel(1)
        } else {
            SubmitOptions::default()
        };
        tickets.push(runtime.submit_with(features.clone(), options).unwrap());
    }
    let mut panicked = 0;
    for (i, ticket) in tickets.into_iter().enumerate() {
        match ticket.wait() {
            Ok(report) => {
                assert_eq!(report.request_index, i);
                // Survivors are bit-identical to the serial session.
                let got = report.run(MappingStrategy::Dynamic).unwrap();
                let want = reference.run(MappingStrategy::Dynamic).unwrap();
                assert_eq!(got.latency_ms.to_bits(), want.latency_ms.to_bits());
            }
            Err(ServeError::WorkerPanicked { message }) => {
                assert_eq!(i, 3, "only the poisoned request may fail");
                assert!(message.contains("injected fault"));
                panicked += 1;
            }
            Err(e) => panic!("request {i}: unexpected error {e}"),
        }
    }
    assert_eq!(panicked, 1);

    let report = runtime.shutdown();
    assert_eq!(report.requests, 5, "five healthy requests served");
    assert!(report.worker_panics >= 1);
    assert!(report.worker_respawns >= 1);
    assert!(report
        .worker_failures
        .iter()
        .any(|m| m.contains("injected fault")));
}

/// Repeated poisonings: the worker survives as many injected panics as its
/// respawn budget allows, and healthy traffic interleaved between them is
/// never affected.
#[test]
fn worker_survives_repeated_panics_within_budget() {
    let (plan, features) = plan_fixture();
    let runtime = ServeRuntime::start(
        plan,
        ServeConfig::default()
            .workers(1)
            .max_batch(1)
            .max_worker_respawns(16),
    );
    let mut outcomes = Vec::new();
    for round in 0..4 {
        let poisoned = runtime
            .submit_with(
                features.clone(),
                SubmitOptions::default().panic_at_kernel(0),
            )
            .unwrap();
        let healthy = runtime.submit(features.clone()).unwrap();
        outcomes.push((round, poisoned.wait(), healthy.wait()));
    }
    for (round, poisoned, healthy) in outcomes {
        assert!(
            matches!(poisoned, Err(ServeError::WorkerPanicked { .. })),
            "round {round}: poisoned ticket must fail typed"
        );
        assert!(healthy.is_ok(), "round {round}: healthy ticket must serve");
    }
    let report = runtime.shutdown();
    assert_eq!(report.worker_panics, 4);
    assert_eq!(report.worker_respawns, 4);
    assert_eq!(report.worker_failures.len(), 4);
}

/// Deadline shed: a request whose deadline lapses in the queue resolves
/// with `DeadlineExceeded` and is never executed.
#[test]
fn expired_requests_resolve_with_deadline_exceeded() {
    let (plan, features) = plan_fixture();
    let runtime = ServeRuntime::start(
        plan,
        ServeConfig::default()
            .workers(1)
            .max_batch(1)
            .device_dwell(DeviceDwell::Modeled {
                strategy: MappingStrategy::Dynamic,
                scale: 50.0,
            }),
    );
    // Park the worker, then queue one request that expires immediately and
    // one with no deadline.
    let parked = runtime.submit(features.clone()).unwrap();
    std::thread::sleep(Duration::from_millis(10));
    let doomed = runtime
        .submit_with(
            features.clone(),
            SubmitOptions::default()
                .deadline(Duration::from_nanos(1))
                .priority(Priority::High),
        )
        .unwrap();
    let patient = runtime.submit(features).unwrap();

    assert!(parked.wait().is_ok());
    assert!(matches!(
        doomed.wait(),
        Err(ServeError::DeadlineExceeded { .. })
    ));
    assert!(patient.wait().is_ok());
    let report = runtime.shutdown();
    assert_eq!(report.deadline_expired, 1);
    assert_eq!(report.requests, 2, "the expired request never executed");
}

/// Queue-full rejection and load shedding both resolve at submission with
/// typed errors; accepted tickets all still resolve.
#[test]
fn overload_resolves_every_submission_with_typed_outcomes() {
    let (plan, features) = plan_fixture();
    let runtime = ServeRuntime::start(
        plan,
        ServeConfig::default()
            .workers(1)
            .max_batch(1)
            .queue_capacity(4)
            .shed_watermarks(3, 1)
            .device_dwell(DeviceDwell::Modeled {
                strategy: MappingStrategy::Dynamic,
                scale: 20.0,
            }),
    );
    let mut accepted: Vec<Ticket> = Vec::new();
    let (mut shed, mut full) = (0u64, 0u64);
    for _ in 0..32 {
        match runtime.try_submit(features.clone()) {
            Ok(t) => accepted.push(t),
            Err(ServeError::Overloaded { .. }) => shed += 1,
            Err(ServeError::QueueFull { .. }) => full += 1,
            Err(e) => panic!("unexpected submission outcome: {e}"),
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(shed > 0, "watermark 3 must trip before capacity 4");
    let accepted_count = accepted.len() as u64;
    for t in accepted {
        t.wait().expect("accepted tickets must serve");
    }
    let report = runtime.shutdown();
    assert_eq!(report.shed, shed);
    assert_eq!(report.requests, accepted_count);
    // Hysteresis note: with low watermark 1 the gate may reopen and close
    // repeatedly; all that matters is that every outcome was typed.
    assert_eq!(accepted_count + shed + full, 32);
}

/// Circuit breaker: with the respawn budget exhausted, the last live
/// worker drains every residual ticket as `Abandoned` instead of hanging.
#[test]
fn exhausted_respawn_budget_drains_residual_tickets() {
    let (plan, features) = plan_fixture();
    let runtime = ServeRuntime::start(
        plan,
        ServeConfig::default()
            .workers(1)
            .max_batch(1)
            .max_worker_respawns(1)
            .device_dwell(DeviceDwell::Modeled {
                strategy: MappingStrategy::Dynamic,
                scale: 10.0,
            }),
    );
    // First poison: caught, respawned (budget now 0).  Second poison: caught,
    // breaker opens.  Residuals: drained as Abandoned.
    let p1 = runtime
        .submit_with(
            features.clone(),
            SubmitOptions::default().panic_at_kernel(0),
        )
        .unwrap();
    let p2 = runtime
        .submit_with(
            features.clone(),
            SubmitOptions::default().panic_at_kernel(0),
        )
        .unwrap();
    let residuals: Vec<Ticket> = (0..4)
        .map(|_| runtime.submit(features.clone()).unwrap())
        .collect();

    assert!(matches!(p1.wait(), Err(ServeError::WorkerPanicked { .. })));
    assert!(matches!(p2.wait(), Err(ServeError::WorkerPanicked { .. })));
    for t in residuals {
        assert!(
            matches!(t.wait(), Err(ServeError::Abandoned { .. })),
            "residual tickets must drain as typed errors"
        );
    }
    let report = runtime.shutdown();
    assert_eq!(report.worker_panics, 2);
    assert_eq!(report.worker_respawns, 1);
}

/// Template (per-request subgraph) runtimes isolate a poisoned request the
/// same way: its ticket fails typed, batch-mates and later requests serve.
#[test]
fn template_runtime_supervises_poisoned_subgraph_requests() {
    use dynasparse::{EngineOptions, ModelTemplate};
    use dynasparse_graph::NeighborSampler;

    let full = Dataset::Cora.spec().generate_scaled(23, 0.08);
    let model = GnnModel::standard(
        GnnModelKind::Gcn,
        full.features.dim(),
        8,
        full.spec.num_classes,
        5,
    );
    let template = ModelTemplate::compile_shared(&model, EngineOptions::default()).unwrap();
    let runtime = ServeRuntime::start_template(template, ServeConfig::default().workers(1));

    let mut tickets = Vec::new();
    for i in 0..4 {
        let sub = NeighborSampler::new([5, 3], 7 + i as u64).sample(&full.graph, &[i as u32 * 3]);
        let features = sub.extract_features(&full.features);
        let options = if i == 1 {
            SubmitOptions::default().panic_at_kernel(0)
        } else {
            SubmitOptions::default()
        };
        tickets.push(
            runtime
                .submit_subgraph_with(sub.into_graph(), features, options)
                .unwrap(),
        );
    }
    for (i, t) in tickets.into_iter().enumerate() {
        match t.wait() {
            Ok(report) => assert_eq!(report.request_index, i),
            Err(ServeError::WorkerPanicked { message }) => {
                assert_eq!(i, 1);
                assert!(message.contains("injected fault"));
            }
            Err(e) => panic!("request {i}: unexpected error {e}"),
        }
    }
    let report = runtime.shutdown();
    assert_eq!(report.requests, 3);
    assert_eq!(report.worker_panics, 1);
    assert_eq!(report.worker_respawns, 1);
}

/// Deadline-bounded shutdown: a too-small drain budget fails residual
/// queued tickets with `Abandoned`; nothing hangs, nothing is lost.
#[test]
fn shutdown_with_deadline_resolves_every_outstanding_ticket() {
    let (plan, features) = plan_fixture();
    let runtime = ServeRuntime::start(
        plan,
        ServeConfig::default()
            .workers(1)
            .max_batch(1)
            .device_dwell(DeviceDwell::Modeled {
                strategy: MappingStrategy::Dynamic,
                scale: 100.0,
            }),
    );
    let tickets: Vec<Ticket> = (0..6)
        .map(|_| runtime.submit(features.clone()).unwrap())
        .collect();
    std::thread::sleep(Duration::from_millis(5));
    let report = runtime.shutdown_with_deadline(Duration::from_millis(1));

    let (mut served, mut abandoned) = (0u64, 0u64);
    for t in tickets {
        match t.wait() {
            Ok(_) => served += 1,
            Err(ServeError::Abandoned { .. }) => abandoned += 1,
            Err(e) => panic!("unexpected outcome: {e}"),
        }
    }
    assert_eq!(served + abandoned, 6, "every ticket resolved");
    assert!(abandoned >= 1, "the tiny budget must abandon residuals");
    assert_eq!(report.requests, served);
}

/// The whole gauntlet at once: a mixed stream of healthy, poisoned, and
/// tightly-deadlined requests against a small sheddable queue, ending in a
/// deadline-bounded shutdown.  Accounting closes exactly: submissions =
/// typed rejections + resolved tickets.
#[test]
fn mixed_fault_storm_loses_no_ticket() {
    let (plan, plan_features) = plan_fixture();
    let (rows, dim) = plan_features.shape();
    let runtime = ServeRuntime::start(
        plan,
        ServeConfig::default()
            .workers(2)
            .max_batch(4)
            .queue_capacity(8)
            .shed_watermarks(6, 2)
            .max_worker_respawns(8)
            .batch_deadline(Duration::from_micros(500)),
    );
    const TOTAL: usize = 48;
    let mut tickets = Vec::new();
    let mut rejected = 0u64;
    for i in 0..TOTAL {
        let features = dense_features(rows, dim, 0.05 + 0.015 * (i % 50) as f64, 300 + i as u64);
        let mut options = SubmitOptions::default();
        if i % 11 == 3 {
            options = options.panic_at_kernel(i % 3);
        }
        if i % 7 == 5 {
            options = options.deadline(Duration::from_micros(50));
        }
        if i % 5 == 0 {
            options = options.priority(Priority::High);
        }
        match runtime.try_submit_with(features, options) {
            Ok(t) => tickets.push(t),
            Err(ServeError::Overloaded { .. }) | Err(ServeError::QueueFull { .. }) => rejected += 1,
            Err(e) => panic!("submission {i}: unexpected error {e}"),
        }
    }
    let accepted = tickets.len() as u64;
    let mut resolved = 0u64;
    for t in tickets {
        match t.wait() {
            Ok(_)
            | Err(ServeError::WorkerPanicked { .. })
            | Err(ServeError::DeadlineExceeded { .. })
            | Err(ServeError::Abandoned { .. }) => resolved += 1,
            Err(e) => panic!("ticket resolved with unexpected error: {e}"),
        }
    }
    assert_eq!(resolved, accepted, "every accepted ticket resolved");
    assert_eq!(accepted + rejected, TOTAL as u64);
    let report = runtime.shutdown_with_deadline(Duration::from_secs(10));
    // Every load-shed submission surfaced to its caller as a rejection.
    assert!(report.shed <= rejected);
    // Caught panics and their respawns stay balanced: a worker either
    // rebuilt after a catch or opened its breaker, never silently died.
    assert!(report.worker_respawns <= report.worker_panics);
}
