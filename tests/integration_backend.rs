//! Equivalence of block-granular dispatch and the execution backends.
//!
//! The backend-abstracted executor rebuilds the dispatched forward pass as
//! a loop over the compiler's partition row blocks, with a per-block
//! density refit and a per-block primitive decision through the session's
//! [`ExecBackend`](dynasparse::ExecBackend).  Because row blocks never
//! split the `k` dimension and every route accumulates each output element
//! in `k`-increasing order, none of that may change a single bit of any
//! observable: this suite pins
//!
//! * block-granular execution (`block_dispatch: true`, the default) against
//!   whole-kernel dispatch (`block_dispatch: false`) — embeddings, density
//!   traces and strategy pricing bit-identical across all four model kinds,
//!   batch sizes 1 and 8, and requests whose row blocks have wildly mixed
//!   densities (a dense hub block over a sparse tail);
//! * the modeled-accelerator backend against the host backend — the
//!   backend may re-route and re-price every block product, but outputs
//!   and pricing stay bit-identical; only `predicted_kernel_ms` (the
//!   backend's own cost estimate) is allowed to differ.

use dynasparse::{
    BackendKind, CompiledPlan, EngineOptions, HostExecutionOptions, InferenceReport,
    MappingStrategy, Planner,
};
use dynasparse_graph::{generators::dense_features, Dataset, FeatureMatrix, GraphDataset};
use dynasparse_matrix::CsrMatrix;
use dynasparse_model::{GnnModel, GnnModelKind};

fn fixture(kind: GnnModelKind) -> (GnnModel, GraphDataset) {
    let ds = Dataset::Cora.spec().generate_scaled(23, 0.12);
    let model = GnnModel::standard(kind, ds.features.dim(), 16, ds.spec.num_classes, 3);
    (model, ds)
}

fn plan_with(
    model: &GnnModel,
    ds: &GraphDataset,
    backend: BackendKind,
    block_dispatch: bool,
) -> CompiledPlan {
    let options = EngineOptions::builder()
        .host(HostExecutionOptions {
            backend,
            block_dispatch,
            ..Default::default()
        })
        .build();
    Planner::new(options).plan(model, ds).unwrap()
}

/// A request with mixed block densities: the first `hub_rows` vertices are
/// ~90 % dense (a hub block the dispatcher should route as GEMM) while the
/// tail stays ~1 % dense (SpDMM/SpGEMM territory).  Whole-kernel dispatch
/// sees one averaged density; the block loop refits each row block — the
/// point of the test is that the differing decisions change nothing.
fn skewed_request(ds: &GraphDataset, hub_rows: usize, seed: u64) -> FeatureMatrix {
    let v = ds.graph.num_vertices();
    let d = ds.features.dim();
    let mut tail = dense_features(v, d, 0.01, seed).to_dense();
    let hub = dense_features(v, d, 0.9, seed + 1).to_dense();
    for r in 0..hub_rows.min(v) {
        for c in 0..d {
            tail.set(r, c, hub.get(r, c));
        }
    }
    FeatureMatrix::Dense(tail)
}

/// A batch mixing uniform-density, skewed-density and CSR-represented
/// requests.
fn request_batch(ds: &GraphDataset, n: usize) -> Vec<FeatureMatrix> {
    (0..n)
        .map(|i| match i % 3 {
            0 => skewed_request(ds, ds.graph.num_vertices() / 4, 700 + i as u64),
            1 => dense_features(
                ds.graph.num_vertices(),
                ds.features.dim(),
                0.01 + 0.1 * i as f64 / n.max(1) as f64,
                700 + i as u64,
            ),
            _ => FeatureMatrix::Sparse(CsrMatrix::from_dense(
                &skewed_request(ds, ds.graph.num_vertices() / 8, 700 + i as u64).to_dense(),
            )),
        })
        .collect()
}

/// Exact equality of everything a report exposes except
/// `predicted_kernel_ms`: that field is the backend's own cost estimate
/// (whole-kernel predictions and summed per-block predictions legitimately
/// differ, as do host and modeled-accelerator prices), while everything
/// the paper's pipeline observes — embeddings, density traces, strategy
/// pricing — must match bit for bit.
fn assert_reports_equal(want: &InferenceReport, got: &InferenceReport, ctx: &str) {
    assert_eq!(
        want.request_index, got.request_index,
        "{ctx}: request_index"
    );
    assert_eq!(
        want.data_movement_ms.to_bits(),
        got.data_movement_ms.to_bits(),
        "{ctx}: data_movement_ms"
    );
    assert_eq!(
        want.feature_movement_ms.to_bits(),
        got.feature_movement_ms.to_bits(),
        "{ctx}: feature_movement_ms"
    );
    assert_eq!(
        want.density_trace, got.density_trace,
        "{ctx}: density_trace"
    );
    assert_eq!(
        want.output_embeddings.to_dense().as_slice(),
        got.output_embeddings.to_dense().as_slice(),
        "{ctx}: embeddings"
    );
    assert_eq!(want.runs.len(), got.runs.len(), "{ctx}: run count");
    for (rw, rg) in want.runs.iter().zip(got.runs.iter()) {
        assert_eq!(rw.strategy, rg.strategy, "{ctx}: strategy");
        assert_eq!(rw.total_cycles, rg.total_cycles, "{ctx}: cycles");
        assert_eq!(
            rw.latency_ms.to_bits(),
            rg.latency_ms.to_bits(),
            "{ctx}: latency"
        );
        assert_eq!(
            rw.average_utilization.to_bits(),
            rg.average_utilization.to_bits(),
            "{ctx}: utilization"
        );
        assert_eq!(rw.overhead, rg.overhead, "{ctx}: overhead");
        assert_eq!(rw.kernels.len(), rg.kernels.len(), "{ctx}: kernel count");
        for (kw, kg) in rw.kernels.iter().zip(rg.kernels.iter()) {
            assert_eq!(
                (kw.kernel_id, kw.layer_id, kw.kind, kw.cycles, kw.decisions),
                (kg.kernel_id, kg.layer_id, kg.kind, kg.cycles, kg.decisions),
                "{ctx}: kernel identity/cost"
            );
            assert_eq!(kw.mix, kg.mix, "{ctx}: mix");
            assert_eq!(
                kw.input_density.to_bits(),
                kg.input_density.to_bits(),
                "{ctx}: input density"
            );
            assert_eq!(
                kw.output_density.to_bits(),
                kg.output_density.to_bits(),
                "{ctx}: output density"
            );
        }
    }
}

/// Serves a batch-1 and a batch-8 request stream through `plan` and
/// returns every report in order.
fn serve(
    plan: &CompiledPlan,
    ds: &GraphDataset,
    strategies: &[MappingStrategy],
) -> Vec<InferenceReport> {
    let mut session = plan.session(strategies);
    let mut reports = Vec::new();
    reports.push(
        session
            .infer(&skewed_request(ds, ds.graph.num_vertices() / 4, 650))
            .unwrap(),
    );
    reports.extend(session.infer_batch(&request_batch(ds, 8)).unwrap());
    reports
}

#[test]
fn block_granular_dispatch_is_bit_identical_to_whole_kernel_on_both_backends() {
    for kind in GnnModelKind::all() {
        let (model, ds) = fixture(kind);
        for backend in [BackendKind::Host, BackendKind::ModeledAccel] {
            let whole = plan_with(&model, &ds, backend, false);
            let blocked = plan_with(&model, &ds, backend, true);
            let want = serve(&whole, &ds, &[MappingStrategy::Dynamic]);
            let got = serve(&blocked, &ds, &[MappingStrategy::Dynamic]);
            assert_eq!(want.len(), got.len());
            for (w, g) in want.iter().zip(got.iter()) {
                assert_reports_equal(
                    w,
                    g,
                    &format!(
                        "{} on {} request {}",
                        kind.name(),
                        backend.label(),
                        w.request_index
                    ),
                );
            }
        }
    }
}

#[test]
fn backends_agree_bitwise_and_the_modeled_backend_prices_every_request() {
    let (model, ds) = fixture(GnnModelKind::Gcn);
    let host_plan = plan_with(&model, &ds, BackendKind::Host, true);
    let accel_plan = plan_with(&model, &ds, BackendKind::ModeledAccel, true);
    let strategies = MappingStrategy::paper_strategies();
    let want = serve(&host_plan, &ds, &strategies);
    let got = serve(&accel_plan, &ds, &strategies);
    assert_eq!(want.len(), got.len());
    for (w, g) in want.iter().zip(got.iter()) {
        assert_reports_equal(
            w,
            g,
            &format!("host vs modeled-accel request {}", w.request_index),
        );
        // The modeled backend prices every kernel from the accelerator cost
        // model — a request can never come back unpriced.
        assert!(
            g.predicted_kernel_ms > 0.0,
            "modeled-accel request {} must carry a positive predicted cost",
            g.request_index
        );
        assert!(g.predicted_kernel_ms.is_finite());
    }
}

#[test]
fn whole_model_pricing_is_unchanged_across_paper_strategies() {
    // The full strategy sweep (Static1/Static2/Dynamic) over the blocked
    // path must reproduce the whole-kernel prices exactly — the Analyzer /
    // Scheduler pipeline consumes the same density traces either way.
    let (model, ds) = fixture(GnnModelKind::Gin);
    let strategies = MappingStrategy::paper_strategies();
    let whole = plan_with(&model, &ds, BackendKind::Host, false);
    let blocked = plan_with(&model, &ds, BackendKind::Host, true);
    let want = serve(&whole, &ds, &strategies);
    let got = serve(&blocked, &ds, &strategies);
    for (w, g) in want.iter().zip(got.iter()) {
        assert_reports_equal(
            w,
            g,
            &format!("paper strategies request {}", w.request_index),
        );
    }
}
