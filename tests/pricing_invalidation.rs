//! Drift-triggered invalidation of the pricing cache.
//!
//! An online recalibration rescales the host fit, which changes the
//! calibration fingerprint baked into every pricing key — so all resident
//! entries must stop matching (no hit may ever replay pricing derived under
//! the superseded fit), and steady-state hits must resume once the repaired
//! fit's keys repopulate.
//!
//! This lives in its **own test binary**, like `telemetry_drift.rs` and for
//! the same reason: it manufactures a stale `DYNASPARSE_CALIBRATION` fit,
//! and the loaded calibration is a process-wide `OnceLock` — sibling test
//! binaries must not inherit it.

use dynasparse::{
    EngineOptions, HostExecutionOptions, MappingStrategy, Planner, Registry, TelemetryLevel,
};
use dynasparse_graph::Dataset;
use dynasparse_matrix::HostCalibration;
use dynasparse_model::{GnnModel, GnnModelKind};
use dynasparse_telemetry::CounterId;
use std::sync::Arc;

/// Persists the 1e6x-inflated reference fit and points
/// `DYNASPARSE_CALIBRATION` at it (same fixture as `telemetry_drift.rs`,
/// separate file so parallel binaries never race on the JSON).
fn install_stale_calibration() {
    let mut stale = HostCalibration::reference();
    for fit in [&mut stale.gemm, &mut stale.spdmm, &mut stale.spmm] {
        fit.work *= 1e6;
        fit.output *= 1e6;
        fit.per_row *= 1e6;
    }
    assert!(stale.is_valid(), "the stale fit must still parse as valid");
    let path = std::env::temp_dir().join("dynasparse_stale_pricing_calibration.json");
    let path = path.to_str().expect("utf-8 temp path").to_string();
    stale.save(&path).expect("persist the stale fit");
    std::env::set_var("DYNASPARSE_CALIBRATION", &path);
}

fn fixture() -> (dynasparse_graph::GraphDataset, GnnModel) {
    let ds = Dataset::Cora.spec().generate_scaled(11, 0.12);
    let model = GnnModel::standard(
        GnnModelKind::Gcn,
        ds.features.dim(),
        16,
        ds.spec.num_classes,
        3,
    );
    (ds, model)
}

#[test]
fn recalibration_flushes_the_cache_then_hits_resume() {
    install_stale_calibration();
    let (ds, model) = fixture();

    // Default host options: recalibrate on, bucketed cache on.  Serving the
    // same request repeatedly would hit from request 2 onward — unless a
    // drift-triggered rescale swaps the fit and flushes the cache.
    let plan = Planner::default().plan(&model, &ds).unwrap();
    let registry = Arc::new(Registry::new(TelemetryLevel::Counters));
    let mut session = plan.session(&[MappingStrategy::Dynamic]);
    session.set_telemetry(Arc::clone(&registry));

    let misses_after_first = {
        session.infer(&ds.features).unwrap();
        registry.counter(CounterId::PricingMiss)
    };
    assert!(misses_after_first > 0, "a cold cache must miss");

    // Keep serving the identical request until the stale fit has been
    // repaired at least once.  Exactly *when* the drift EWMA crosses the
    // band depends on host timing, so loop rather than pin a request index.
    let mut recalibrations = 0;
    for _ in 0..12 {
        session.infer(&ds.features).unwrap();
        recalibrations = registry.counter(CounterId::Recalibrations);
        if recalibrations > 0 {
            break;
        }
    }
    assert!(
        recalibrations > 0,
        "a 1e6x-stale fit must trigger online recalibration"
    );
    let misses_after_recal = registry.counter(CounterId::PricingMiss);
    assert!(
        misses_after_recal > misses_after_first,
        "the repaired fit changes the calibration fingerprint, so the \
         repeated request must re-miss ({misses_after_first} -> {misses_after_recal})"
    );

    // Once the gauges settle inside the drift band, the repaired fit's keys
    // are stable and the identical request must go back to pure hits.  Give
    // stragglers (late recalibrations of other primitives) a few requests.
    let mut saw_pure_hit_request = false;
    for _ in 0..10 {
        let hits = registry.counter(CounterId::PricingHit);
        let misses = registry.counter(CounterId::PricingMiss);
        session.infer(&ds.features).unwrap();
        let dh = registry.counter(CounterId::PricingHit) - hits;
        let dm = registry.counter(CounterId::PricingMiss) - misses;
        if dm == 0 && dh > 0 {
            saw_pure_hit_request = true;
            break;
        }
    }
    assert!(
        saw_pure_hit_request,
        "steady-state hits must resume after the fit is repaired"
    );
}

#[test]
fn pinned_calibration_never_invalidates() {
    install_stale_calibration();
    let (ds, model) = fixture();

    // Control: recalibration pinned off.  However stale the fit, the
    // calibration fingerprint never changes, so every repeat is a pure hit.
    let plan = Planner::new(
        EngineOptions::builder()
            .host(HostExecutionOptions {
                recalibrate: false,
                ..Default::default()
            })
            .build(),
    )
    .plan(&model, &ds)
    .unwrap();
    let registry = Arc::new(Registry::new(TelemetryLevel::Counters));
    let mut session = plan.session(&[MappingStrategy::Dynamic]);
    session.set_telemetry(Arc::clone(&registry));

    session.infer(&ds.features).unwrap();
    let misses = registry.counter(CounterId::PricingMiss);
    for _ in 0..5 {
        session.infer(&ds.features).unwrap();
    }
    assert_eq!(
        registry.counter(CounterId::PricingMiss),
        misses,
        "with the fingerprint pinned, repeats must never re-miss"
    );
    assert_eq!(
        registry.counter(CounterId::PricingHit),
        5 * misses,
        "every kernel-strategy lookup must hit on each of the 5 repeats"
    );
    assert_eq!(registry.counter(CounterId::Recalibrations), 0);
}
