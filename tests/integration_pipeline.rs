//! Whole-pipeline consistency: compiler output, engine accounting and the
//! baseline models must agree on the quantities they share (task counts,
//! workload sizes, latency bookkeeping).

use dynasparse::{Engine, EngineOptions, MappingStrategy};
use dynasparse_baselines::{EndToEndBreakdown, FrameworkBaseline, FrameworkKind, WorkloadSummary};
use dynasparse_compiler::{compile, CompilerConfig, ComputationGraph};
use dynasparse_graph::Dataset;
use dynasparse_model::{GnnModel, GnnModelKind};

fn setup() -> (GnnModel, dynasparse_graph::GraphDataset) {
    let ds = Dataset::PubMed.spec().generate_scaled(17, 0.1);
    let model = GnnModel::standard(
        GnnModelKind::Gcn,
        ds.features.dim(),
        16,
        ds.spec.num_classes,
        5,
    );
    (model, ds)
}

#[test]
fn engine_kernel_cycles_sum_to_the_reported_total() {
    let (model, ds) = setup();
    let eval = Engine::new(EngineOptions::default())
        .evaluate(&model, &ds, &MappingStrategy::paper_strategies())
        .unwrap();
    for run in &eval.runs {
        let sum: u64 = run.kernels.iter().map(|k| k.cycles).sum();
        assert_eq!(sum, run.total_cycles, "{}", run.strategy.label());
        let expect_ms = run.total_cycles as f64 / 250e3;
        assert!((run.latency_ms - expect_ms).abs() < 1e-9);
        assert!(
            (run.end_to_end_ms - (eval.compile_ms + eval.data_movement_ms + run.latency_ms)).abs()
                < 1e-9
        );
    }
}

#[test]
fn compiled_task_counts_match_what_the_scheduler_dispatched() {
    let (model, ds) = setup();
    let report = compile(&model, &ds, &CompilerConfig::default());
    let eval = Engine::new(EngineOptions::default())
        .evaluate(&model, &ds, &[MappingStrategy::Dynamic])
        .unwrap();
    let run = eval.run(MappingStrategy::Dynamic).unwrap();
    // The engine analyzed exactly the kernels the compiler produced, and the
    // per-kernel decision count equals the number of block products.
    assert_eq!(run.kernels.len(), report.program.kernels.len());
    for (kr, ck) in run.kernels.iter().zip(report.program.kernels.iter()) {
        assert_eq!(kr.kernel_id, ck.ir.id);
        assert_eq!(kr.mix.total(), ck.total_pairs());
    }
}

#[test]
fn baseline_workload_uses_the_same_kernel_structure_as_the_compiler() {
    let (model, ds) = setup();
    let graph = ComputationGraph::from_model(&model, ds.graph.num_vertices(), ds.graph.num_edges());
    let workload = WorkloadSummary::from_graph(
        &graph,
        ds.graph.num_edges() + ds.graph.num_vertices(),
        ds.features.dim(),
        ds.feature_density(),
    );
    assert_eq!(workload.kernels.len(), graph.len());
    // Every baseline must take strictly positive time on a non-trivial model.
    for kind in FrameworkKind::software()
        .into_iter()
        .chain(FrameworkKind::accelerators())
    {
        let b = FrameworkBaseline::new(kind, workload.clone());
        assert!(b.execution_ms() > 0.0, "{}", kind.name());
    }
}

#[test]
fn dynasparse_is_faster_than_the_software_baselines_on_the_same_workload() {
    let (model, ds) = setup();
    let eval = Engine::new(EngineOptions::default())
        .evaluate(&model, &ds, &[MappingStrategy::Dynamic])
        .unwrap();
    let dynamic_ms = eval.run(MappingStrategy::Dynamic).unwrap().latency_ms;
    let graph = ComputationGraph::from_model(&model, ds.graph.num_vertices(), ds.graph.num_edges());
    let workload = WorkloadSummary::from_graph(
        &graph,
        ds.graph.num_edges() + ds.graph.num_vertices(),
        ds.features.dim(),
        ds.feature_density(),
    );
    // At this reduced scale the GPU's raw throughput can mask its dispatch
    // overheads, so the guaranteed ordering is against the CPU frameworks
    // (the published-scale GPU comparison is produced by the fig14 harness).
    for kind in [FrameworkKind::PygCpu, FrameworkKind::DglCpu] {
        let b = FrameworkBaseline::new(kind, workload.clone());
        assert!(
            b.execution_ms() > dynamic_ms,
            "{} ({} ms) should be slower than Dynasparse ({dynamic_ms} ms)",
            kind.name(),
            b.execution_ms()
        );
    }
}

#[test]
fn end_to_end_breakdown_components_are_consistent() {
    let (model, ds) = setup();
    let eval = Engine::new(EngineOptions::default())
        .evaluate(&model, &ds, &[MappingStrategy::Dynamic])
        .unwrap();
    let run = eval.run(MappingStrategy::Dynamic).unwrap();
    let breakdown = EndToEndBreakdown {
        preprocessing_ms: eval.compile_ms,
        data_movement_ms: eval.data_movement_ms,
        execution_ms: run.latency_ms,
    };
    assert!((breakdown.total_ms() - run.end_to_end_ms).abs() < 1e-9);
    let (p, m, e) = breakdown.fractions();
    assert!((p + m + e - 1.0).abs() < 1e-9);
}

#[test]
fn strategy_runs_serialize_to_json_for_the_harness_reports() {
    let (model, ds) = setup();
    let eval = Engine::new(EngineOptions::default())
        .evaluate(&model, &ds, &[MappingStrategy::Dynamic])
        .unwrap();
    let json = serde_json::to_string(&eval.runs).expect("runs serialize");
    assert!(json.contains("\"Dynamic\""));
    assert!(json.contains("latency_ms"));
}
